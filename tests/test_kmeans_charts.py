"""Tests for the k-means baseline and the ASCII chart renderers."""

import numpy as np
import pytest

from repro.data import rings, snakes
from repro.errors import ParameterError
from repro.evaluation.ascii_chart import line_chart, sawtooth_chart
from repro.extensions.kmeans import kmeans, purity

from .conftest import make_blobs


class TestKMeans:
    def test_separates_well_separated_blobs(self):
        rng = np.random.default_rng(0)
        pts = np.vstack([
            rng.normal(0, 0.5, size=(50, 2)),
            rng.normal(20, 0.5, size=(50, 2)),
        ])
        res = kmeans(pts, 2, seed=1)
        assert res.k == 2
        assert len(set(res.labels[:50])) == 1
        assert res.labels[0] != res.labels[50]

    def test_inertia_decreases_with_more_centers(self):
        pts = make_blobs(200, 2, 4, spread=1.5, domain=40.0, seed=2)
        inertias = [kmeans(pts, k, seed=3).inertia for k in (1, 2, 4, 8)]
        assert all(a >= b for a, b in zip(inertias, inertias[1:]))

    def test_k_equals_n(self):
        pts = np.arange(10, dtype=float).reshape(-1, 1) * 5
        res = kmeans(pts, 10, seed=4)
        assert res.inertia == pytest.approx(0.0)

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            kmeans(np.zeros((5, 2)), 0)
        with pytest.raises(ParameterError):
            kmeans(np.zeros((5, 2)), 6)

    def test_deterministic_under_seed(self):
        pts = make_blobs(120, 2, 3, spread=1.0, domain=25.0, seed=5)
        a = kmeans(pts, 3, seed=42)
        b = kmeans(pts, 3, seed=42)
        assert np.array_equal(a.labels, b.labels)

    def test_duplicate_points(self):
        pts = np.vstack([np.zeros((30, 2)), np.ones((30, 2)) * 9])
        res = kmeans(pts, 2, seed=6)
        assert res.inertia == pytest.approx(0.0)

    def test_figure1_claim_dbscan_beats_kmeans_on_shapes(self):
        """The paper's opening claim, as a test."""
        from repro.algorithms.approx import approx_dbscan

        for pts, prov, eps in (
            (*snakes(600, n_snakes=4, seed=7), 0.6),
            (*rings(600, radii=(1.0, 2.2, 3.4), noise=0.05, seed=8), 0.35),
        ):
            k = len(set(prov.tolist()))
            db = approx_dbscan(pts, eps, 5, rho=0.001)
            km = kmeans(pts, k, seed=9)
            assert purity(db.labels, prov) > purity(km.labels, prov)


class TestPurity:
    def test_perfect(self):
        labels = np.array([0, 0, 1, 1])
        prov = np.array([5, 5, 7, 7])
        assert purity(labels, prov) == 1.0

    def test_mixed(self):
        labels = np.array([0, 0, 0, 0])
        prov = np.array([1, 1, 2, 2])
        assert purity(labels, prov) == 0.5

    def test_noise_counts_as_pure(self):
        labels = np.array([-1, -1, 0, 0])
        prov = np.array([3, 4, 5, 5])
        assert purity(labels, prov) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ParameterError):
            purity(np.zeros(3), np.zeros(4))


class TestLineChart:
    def test_renders_series(self):
        chart = line_chart([1, 2, 4], {"a": [0.1, 0.2, 0.4], "b": [1.0, 2.0, 4.0]})
        assert "o = a" in chart and "x = b" in chart
        assert chart.count("\n") >= 10

    def test_skips_none(self):
        chart = line_chart([1, 2], {"a": [0.5, None]})
        assert "o" in chart

    def test_empty_data(self):
        assert line_chart([], {}) == "(no data)"
        assert line_chart([1], {"a": [None]}) == "(no data)"

    def test_linear_scale(self):
        chart = line_chart([1, 2], {"a": [1.0, 2.0]}, logy=False)
        assert "log y" not in chart

    def test_constant_series(self):
        chart = line_chart([1, 2, 3], {"a": [1.0, 1.0, 1.0]})
        assert "o" in chart


class TestSawtoothChart:
    def test_renders(self):
        chart = sawtooth_chart([1000, 2000, 3000], [0.1, 0.0, 0.05])
        assert chart.count("*") == 3

    def test_empty(self):
        assert sawtooth_chart([], []) == "(no data)"

    def test_caps_at_top(self):
        chart = sawtooth_chart([1.0], [5.0], rho_top=0.1)
        first_data_row = chart.splitlines()[1]
        assert "*" in first_data_row  # clipped to the top band
