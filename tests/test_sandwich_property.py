"""Property-based test of the Sandwich Theorem (Theorem 3).

A rho-approximate clustering (any legal answer to Problem 2, hence any
output of OurApprox) is *sandwiched* between the exact results at the two
radii:

1. every exact DBSCAN(eps) cluster is contained in some returned cluster;
2. every returned cluster is contained in some exact DBSCAN(eps(1+rho))
   cluster;
3. every returned cluster contains at least one exact DBSCAN(eps) cluster
   (it owns a core point, whose eps-cluster it must have swallowed by 1).

The oracle is the O(n^2) brute-force algorithm at eps and at eps(1+rho).
The property is exercised for *random* eps and rho via hypothesis and for
fixed paper-flavoured configurations, against both the serial and the
sharded parallel approx pipelines — the approximation guarantee must
survive parallelisation, not just label equality.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.approx import approx_dbscan
from repro.algorithms.brute import brute_dbscan
from repro.data.seed_spreader import seed_spreader
from repro.data.shapes import two_moons
from repro.parallel import ParallelConfig

from .conftest import make_blobs


def serial_approx(pts, eps, min_pts, rho):
    return approx_dbscan(pts, eps, min_pts, rho=rho, workers=1)


def parallel_approx(pts, eps, min_pts, rho):
    return approx_dbscan(
        pts, eps, min_pts, rho=rho, workers=ParallelConfig(workers=2, min_points=0)
    )


RUNNERS = {"serial": serial_approx, "parallel": parallel_approx}


def assert_sandwiched(pts, eps, min_pts, rho, result):
    """The three containments of Theorem 3, verified by brute force."""
    lower = brute_dbscan(pts, eps, min_pts)
    upper = brute_dbscan(pts, eps * (1.0 + rho), min_pts)

    # Core points answer Problem 1 exactly: the core mask is not approximated.
    assert np.array_equal(result.core_mask, lower.core_mask)

    for C in lower.clusters:
        assert any(C <= D for D in result.clusters), (
            f"exact eps-cluster of size {len(C)} not contained in any "
            f"approx cluster (eps={eps:g}, rho={rho:g})"
        )
    for D in result.clusters:
        assert any(D <= E for E in upper.clusters), (
            f"approx cluster of size {len(D)} not contained in any exact "
            f"eps(1+rho)-cluster (eps={eps:g}, rho={rho:g})"
        )
        assert any(C <= D for C in lower.clusters), (
            f"approx cluster of size {len(D)} contains no exact eps-cluster "
            f"(eps={eps:g}, rho={rho:g})"
        )


class TestSandwichFixed:
    @pytest.mark.parametrize("runner", RUNNERS, ids=RUNNERS.keys())
    @pytest.mark.parametrize("rho", [0.001, 0.1, 1.0])
    def test_seed_spreader(self, runner, rho):
        ds = seed_spreader(350, 3, seed=41)
        for eps in (200.0, 3000.0):
            result = RUNNERS[runner](ds.points, eps, 10, rho)
            assert_sandwiched(ds.points, eps, 10, rho, result)

    @pytest.mark.parametrize("runner", RUNNERS, ids=RUNNERS.keys())
    def test_two_moons_near_touching(self, runner):
        # eps close to the inter-moon gap: the regime where a large rho
        # visibly merges the moons — the sandwich must hold regardless.
        pts, _ = two_moons(260, noise=0.05, seed=42)
        for rho in (0.01, 0.5):
            result = RUNNERS[runner](pts, 0.22, 8, rho)
            assert_sandwiched(pts, 0.22, 8, rho, result)

    def test_merge_actually_possible(self):
        # Sanity that the property is not vacuous: with a huge rho the
        # approx result may legally merge clusters the exact one keeps
        # apart, and the sandwich still holds.
        pts = make_blobs(200, 2, 3, spread=0.8, domain=30.0, seed=43)
        rho = 2.0
        result = serial_approx(pts, 2.0, 5, rho)
        lower = brute_dbscan(pts, 2.0, 5)
        assert result.n_clusters <= lower.n_clusters
        assert_sandwiched(pts, 2.0, 5, rho, result)


class TestSandwichRandomised:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 2**20),
        eps=st.floats(0.8, 12.0),
        rho=st.floats(0.0005, 1.5),
        min_pts=st.integers(2, 12),
    )
    def test_random_eps_rho_serial(self, seed, eps, rho, min_pts):
        pts = make_blobs(160, 3, 3, spread=1.2, domain=45.0, seed=seed)
        result = serial_approx(pts, eps, min_pts, rho)
        assert_sandwiched(pts, eps, min_pts, rho, result)

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 2**20),
        eps=st.floats(0.8, 12.0),
        rho=st.floats(0.0005, 1.5),
    )
    def test_random_eps_rho_parallel(self, seed, eps, rho):
        pts = make_blobs(160, 3, 3, spread=1.2, domain=45.0, seed=seed)
        result = parallel_approx(pts, eps, 8, rho)
        assert_sandwiched(pts, eps, 8, rho, result)
        # And the parallel approx path must agree with the serial one
        # exactly — same edge decisions, same stitching order.
        assert np.array_equal(result.labels, serial_approx(pts, eps, 8, rho).labels)
