"""Tests for VZ features, real-dataset stand-ins, 2D shapes, and IO."""

import numpy as np
import pytest

from repro import config
from repro.data import io as data_io
from repro.data import real_like, shapes, vz
from repro.errors import DataError, InvalidDataError, ParameterError


class TestSyntheticImage:
    def test_shape_and_range(self):
        img = vz.synthetic_satellite_image(32, 48, seed=0)
        assert img.shape == (32, 48, 3)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_deterministic(self):
        a = vz.synthetic_satellite_image(16, 16, seed=1)
        b = vz.synthetic_satellite_image(16, 16, seed=1)
        assert np.array_equal(a, b)

    def test_too_small_rejected(self):
        with pytest.raises(ParameterError):
            vz.synthetic_satellite_image(2, 2)

    def test_regions_have_distinct_colors(self):
        img = vz.synthetic_satellite_image(64, 64, n_regions=4, seed=2)
        # Color variance across the image must be substantial.
        assert img.reshape(-1, 3).std(axis=0).max() > 0.05


class TestVZFeatures:
    def test_feature_shape(self):
        img = np.zeros((10, 12, 3))
        feats = vz.vz_features(img, patch_size=3)
        assert feats.shape == ((10 - 2) * (12 - 2), 9 * 3)

    def test_grayscale_input(self):
        img = np.zeros((8, 8))
        feats = vz.vz_features(img, patch_size=3)
        assert feats.shape == (36, 9)

    def test_constant_image_constant_features(self):
        img = np.full((8, 8), 0.5)
        feats = vz.vz_features(img, patch_size=3)
        assert np.allclose(feats, 0.5)

    def test_center_pixel_present(self):
        # The central element of each patch equals the pixel value.
        rng = np.random.default_rng(3)
        img = rng.uniform(size=(9, 9))
        feats = vz.vz_features(img, patch_size=3)
        centers = img[1:-1, 1:-1].ravel()
        # patch ordering: dy,dx row-major; centre is element 4 for 3x3 gray.
        assert np.allclose(feats[:, 4], centers)

    def test_even_patch_rejected(self):
        with pytest.raises(ParameterError):
            vz.vz_features(np.zeros((8, 8)), patch_size=2)

    def test_image_smaller_than_patch_rejected(self):
        with pytest.raises(DataError):
            vz.vz_features(np.zeros((2, 2)), patch_size=3)


class TestPCA:
    def test_projects_to_k(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(100, 6))
        proj, comps = vz.pca(X, 2)
        assert proj.shape == (100, 2)
        assert comps.shape == (2, 6)

    def test_components_orthonormal(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(60, 5))
        _proj, comps = vz.pca(X, 3)
        assert np.allclose(comps @ comps.T, np.eye(3), atol=1e-8)

    def test_captures_dominant_direction(self):
        rng = np.random.default_rng(6)
        t = rng.normal(size=200)
        X = np.column_stack([t * 10, t * 0.1 + rng.normal(0, 0.01, 200)])
        _proj, comps = vz.pca(X, 1)
        # First component ~ (1, 0.01)/|..| -> |x-component| near 1.
        assert abs(comps[0, 0]) > 0.99

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            vz.pca(np.zeros((5, 3)), 4)


class TestRescale:
    def test_maps_to_domain(self):
        rng = np.random.default_rng(7)
        X = rng.normal(size=(50, 3)) * 100 - 40
        out = vz.rescale_to_domain(X, 1000.0)
        assert out.min() == pytest.approx(0.0)
        assert out.max() == pytest.approx(1000.0)

    def test_constant_column(self):
        X = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        out = vz.rescale_to_domain(X, 10.0)
        assert (out[:, 0] == 0.0).all()


class TestRealLike:
    @pytest.mark.parametrize(
        "gen,d",
        [(real_like.pamap2_like, 4), (real_like.farm_like, 5), (real_like.household_like, 7)],
    )
    def test_shape_and_domain(self, gen, d):
        X = gen(1500, seed=0)
        assert X.shape == (1500, d)
        assert X.min() >= 0.0 and X.max() <= config.DOMAIN_SIZE

    @pytest.mark.parametrize(
        "gen", [real_like.pamap2_like, real_like.farm_like, real_like.household_like]
    )
    def test_deterministic(self, gen):
        assert np.array_equal(gen(400, seed=5), gen(400, seed=5))

    @pytest.mark.parametrize(
        "gen", [real_like.pamap2_like, real_like.farm_like, real_like.household_like]
    )
    def test_clustered_structure(self, gen):
        # DBSCAN at a moderate radius must find structure: some clusters,
        # and clearly not one point per cluster.
        from repro.algorithms.approx import approx_dbscan

        X = gen(1500, seed=1)
        res = approx_dbscan(X, 8000.0, 10, rho=0.01)
        assert 1 <= res.n_clusters <= 150

    def test_generators_registry(self):
        assert set(real_like.REAL_LIKE_GENERATORS) == {"pamap2", "farm", "household"}

    def test_rejects_tiny_n(self):
        with pytest.raises(ParameterError):
            real_like.pamap2_like(5)


class TestShapes:
    def test_two_moons(self):
        pts, labels = shapes.two_moons(200, seed=0)
        assert pts.shape == (200, 2)
        assert set(labels.tolist()) == {0, 1}

    def test_rings_sizes_balanced(self):
        pts, labels = shapes.rings(90, radii=(1.0, 2.0, 3.0), seed=1)
        counts = np.bincount(labels)
        assert counts.tolist() == [30, 30, 30]

    def test_snakes(self):
        pts, labels = shapes.snakes(400, n_snakes=4, seed=2)
        assert pts.shape == (400, 2)
        assert len(set(labels.tolist())) == 4

    def test_gaussian_blobs_with_noise(self):
        centers = np.array([[0.0, 0.0], [10.0, 10.0]])
        pts, labels = shapes.gaussian_blobs(100, centers, noise_fraction=0.1, seed=3)
        assert (labels == -1).sum() == 10

    def test_bad_noise_fraction(self):
        with pytest.raises(ParameterError):
            shapes.gaussian_blobs(10, np.zeros((1, 2)), noise_fraction=1.0)

    def test_moons_separable_by_dbscan(self):
        from repro.api import dbscan

        pts, _labels = shapes.two_moons(400, noise=0.04, seed=4)
        res = dbscan(pts, eps=0.18, min_pts=5)
        assert res.n_clusters == 2


class TestIO:
    @pytest.mark.parametrize("ext", [".npy", ".csv", ".txt"])
    def test_roundtrip(self, tmp_path, ext):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(20, 3))
        path = str(tmp_path / f"pts{ext}")
        data_io.save_points(pts, path)
        loaded = data_io.load_points(path)
        assert np.allclose(loaded, pts)

    def test_unsupported_extension(self, tmp_path):
        with pytest.raises(DataError):
            data_io.save_points(np.zeros((2, 2)), str(tmp_path / "x.parquet"))

    def test_missing_file(self):
        with pytest.raises(DataError):
            data_io.load_points("/nonexistent/file.npy")

    def test_1d_csv_loads_as_column(self, tmp_path):
        path = str(tmp_path / "one.csv")
        data_io.save_points(np.array([[1.0], [2.0]]), path)
        assert data_io.load_points(path).shape == (2, 1)


class TestHardenedIngestion:
    """load_points screens bad rows per the on_bad_rows policy."""

    @staticmethod
    def _dirty_csv(tmp_path):
        path = str(tmp_path / "dirty.csv")
        with open(path, "w") as fh:
            fh.write("1.0,2.0\n")
            fh.write("3.0,nan\n")        # non-finite
            fh.write("4.0,5.0\n")
            fh.write("hello,6.0\n")      # non-numeric
            fh.write("7.0\n")            # ragged (1 column, expected 2)
            fh.write("8.0,9.0\n")
        return path

    def test_raise_is_default_and_structured(self, tmp_path):
        path = self._dirty_csv(tmp_path)
        with pytest.raises(InvalidDataError) as ei:
            data_io.load_points(path)
        exc = ei.value
        assert len(exc.bad_rows) == 3
        assert any("non-finite" in r for r in exc.reasons)
        assert any("non-numeric" in r for r in exc.reasons)
        assert any("expected 2 columns" in r for r in exc.reasons)
        # Line numbers point into the original file.
        assert any(r.startswith("line 2:") for r in exc.reasons)
        # An InvalidDataError is still a DataError for coarse handlers.
        assert isinstance(exc, DataError)

    def test_drop_returns_good_rows(self, tmp_path):
        path = self._dirty_csv(tmp_path)
        pts = data_io.load_points(path, on_bad_rows="drop")
        assert pts.shape == (3, 2)
        assert np.allclose(pts, [[1.0, 2.0], [4.0, 5.0], [8.0, 9.0]])

    def test_quarantine_writes_sidecar(self, tmp_path):
        path = self._dirty_csv(tmp_path)
        pts = data_io.load_points(path, on_bad_rows="quarantine")
        assert pts.shape == (3, 2)
        sidecar = path + ".quarantine.csv"
        content = open(sidecar).read()
        assert "3.0,nan" in content
        assert "hello,6.0" in content
        assert "non-finite" in content

    def test_quarantine_sidecar_unique_per_run(self, tmp_path):
        # Re-running the loader must not clobber an earlier run's
        # quarantine evidence: each run claims a fresh sidecar.
        path = self._dirty_csv(tmp_path)
        data_io.load_points(path, on_bad_rows="quarantine")
        first = path + ".quarantine.csv"
        original = open(first).read()
        data_io.load_points(path, on_bad_rows="quarantine")
        data_io.load_points(path, on_bad_rows="quarantine")
        second = path + ".quarantine-1.csv"
        third = path + ".quarantine-2.csv"
        assert open(first).read() == original  # untouched
        assert open(second).read() == original
        assert open(third).read() == original

    def test_npy_nonfinite_row(self, tmp_path):
        path = str(tmp_path / "dirty.npy")
        np.save(path, np.array([[1.0, 2.0], [np.inf, 3.0], [4.0, 5.0]]))
        with pytest.raises(InvalidDataError):
            data_io.load_points(path)
        pts = data_io.load_points(path, on_bad_rows="drop")
        assert pts.shape == (2, 2)

    def test_all_rows_bad_always_raises(self, tmp_path):
        path = str(tmp_path / "allbad.csv")
        with open(path, "w") as fh:
            fh.write("nan,nan\ninf,1.0\n")
        for mode in ("raise", "drop", "quarantine"):
            with pytest.raises(InvalidDataError):
                data_io.load_points(path, on_bad_rows=mode)

    def test_unknown_mode_rejected(self, tmp_path):
        path = str(tmp_path / "ok.csv")
        data_io.save_points(np.zeros((3, 2)), path)
        with pytest.raises(DataError):
            data_io.load_points(path, on_bad_rows="ignore")

    def test_clean_file_untouched_by_modes(self, tmp_path):
        path = str(tmp_path / "clean.csv")
        pts = np.arange(8.0).reshape(4, 2)
        data_io.save_points(pts, path)
        for mode in ("raise", "drop", "quarantine"):
            assert np.allclose(data_io.load_points(path, on_bad_rows=mode), pts)
        assert not (tmp_path / "clean.csv.quarantine.csv").exists()

    def test_invalid_data_error_pickles(self):
        import pickle

        exc = InvalidDataError("f.csv: 1 bad", bad_rows=["a,b"], reasons=["line 1: x"])
        rt = pickle.loads(pickle.dumps(exc))
        assert rt.bad_rows == exc.bad_rows
        assert rt.reasons == exc.reasons
        assert str(rt) == str(exc)
