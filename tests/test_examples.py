"""Smoke tests: every example script must run to completion."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

SCRIPTS = [
    "quickstart.py",
    "image_segmentation.py",
    "activity_monitoring.py",
    "usec_reduction.py",
    "visualize_clusters.py",
    "arbitrary_shapes.py",
    "parameter_selection.py",
    "resilient_clustering.py",
]


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script):
    path = os.path.join(EXAMPLES_DIR, script)
    proc = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_quickstart_reports_agreement():
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert "SAME" in proc.stdout


def test_usec_reduction_all_agree():
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "usec_reduction.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert "16/16 instances agree" in proc.stdout
