"""Cross-validation of the grid's two neighbour-enumeration strategies.

The grid answers neighbour queries either from the precomputed offset
table or (in high dimension, where the table explodes) from a vectorised
all-pairs adjacency map.  Both must give identical answers; this suite
forces each path and compares.
"""

import numpy as np
import pytest

from repro.grid.cells import Grid

from .conftest import make_blobs


def forced(points, eps, use_allpairs):
    grid = Grid(points, eps)
    grid._use_allpairs = use_allpairs
    grid._adjacency = None
    return grid


@pytest.mark.parametrize("d", [1, 2, 3, 4])
@pytest.mark.parametrize("seed", [0, 1])
def test_neighbor_cells_agree(d, seed):
    pts = make_blobs(150, d, 3, spread=1.0, domain=30.0, seed=seed)
    eps = 3.0
    offsets_grid = forced(pts, eps, use_allpairs=False)
    allpairs_grid = forced(pts, eps, use_allpairs=True)
    for cell in offsets_grid.cells:
        a = sorted(offsets_grid.neighbor_cells(cell))
        b = sorted(allpairs_grid.neighbor_cells(cell))
        assert a == b, cell


@pytest.mark.parametrize("d", [2, 3])
def test_neighbor_cells_include_self_agree(d):
    pts = make_blobs(100, d, 2, spread=1.0, domain=20.0, seed=2)
    offsets_grid = forced(pts, 2.5, use_allpairs=False)
    allpairs_grid = forced(pts, 2.5, use_allpairs=True)
    cell = next(iter(offsets_grid.cells))
    a = sorted(offsets_grid.neighbor_cells(cell, include_self=True))
    b = sorted(allpairs_grid.neighbor_cells(cell, include_self=True))
    assert a == b
    assert cell in a


@pytest.mark.parametrize("d", [1, 2, 3, 4])
def test_neighbor_cell_pairs_agree(d):
    pts = make_blobs(120, d, 3, spread=1.2, domain=25.0, seed=3)
    eps = 3.0
    offsets_grid = forced(pts, eps, use_allpairs=False)
    allpairs_grid = forced(pts, eps, use_allpairs=True)
    a = {frozenset(p) for p in offsets_grid.neighbor_cell_pairs()}
    b = {frozenset(p) for p in allpairs_grid.neighbor_cell_pairs()}
    assert a == b


def test_neighbor_cell_pairs_subset_agree():
    pts = make_blobs(150, 3, 3, spread=1.2, domain=25.0, seed=4)
    offsets_grid = forced(pts, 3.0, use_allpairs=False)
    allpairs_grid = forced(pts, 3.0, use_allpairs=True)
    subset = list(offsets_grid.cells)[::2]
    a = {frozenset(p) for p in offsets_grid.neighbor_cell_pairs(subset=subset)}
    b = {frozenset(p) for p in allpairs_grid.neighbor_cell_pairs(subset=subset)}
    assert a == b


def test_high_dimension_picks_allpairs():
    rng = np.random.default_rng(5)
    pts = rng.uniform(0, 100_000, size=(500, 7))
    grid = Grid(pts, 5000.0)
    assert grid._use_allpairs


def test_low_dimension_picks_offsets():
    rng = np.random.default_rng(6)
    pts = rng.uniform(0, 100, size=(500, 2))
    grid = Grid(pts, 5.0)
    assert not grid._use_allpairs


def test_full_clustering_agrees_in_7d():
    """End-to-end: force both strategies through the exact algorithm."""
    from repro.algorithms.brute import brute_dbscan
    from repro.core.border import assign_borders
    from repro.core.cellgraph import exact_components
    from repro.core.labeling import label_cores
    from repro.core.result import build_clustering

    rng = np.random.default_rng(7)
    pts = np.vstack([
        rng.normal(20, 1.0, size=(60, 7)),
        rng.normal(60, 1.0, size=(60, 7)),
    ])
    eps, min_pts = 6.0, 5
    reference = brute_dbscan(pts, eps, min_pts)
    for use_allpairs in (False, True):
        grid = forced(pts, eps, use_allpairs)
        core = label_cores(grid, min_pts)
        labels, _k = exact_components(grid, core)
        borders = assign_borders(grid, core, labels)
        result = build_clustering(len(pts), core, labels, borders)
        assert result.same_clusters(reference)
