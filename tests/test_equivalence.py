"""Cross-algorithm equivalence: the strongest oracle in the suite.

The DBSCAN result is unique (Problem 1), so every exact algorithm — brute
force, KDD96 (over either index), CIT08, and the paper's grid+BCP
algorithm — must return *identical* cluster sets, core masks included, on
every input.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.algorithms.brute import brute_dbscan
from repro.algorithms.cit08 import cit08_dbscan
from repro.algorithms.exact_grid import exact_grid_dbscan
from repro.algorithms.kdd96 import kdd96_dbscan

from .conftest import make_blobs

ALGOS = {
    "grid": exact_grid_dbscan,
    "kdd96": kdd96_dbscan,
    "cit08": cit08_dbscan,
}


def assert_all_equal(points, eps, min_pts):
    reference = brute_dbscan(points, eps, min_pts)
    for name, fn in ALGOS.items():
        got = fn(points, eps, min_pts)
        assert got.same_clusters(reference), (
            f"{name} disagrees with brute: {got.summary()} vs {reference.summary()}"
        )
        assert (got.core_mask == reference.core_mask).all(), f"{name} core mask differs"
    return reference


class TestEquivalenceStructured:
    @pytest.mark.parametrize("d", [1, 2, 3, 4, 5])
    def test_blobs(self, d):
        pts = make_blobs(180, d, 3, spread=1.2, domain=40.0, seed=100 + d)
        assert_all_equal(pts, eps=3.0, min_pts=5)

    @pytest.mark.parametrize("eps", [0.5, 2.0, 8.0, 50.0, 200.0])
    def test_eps_sweep(self, eps):
        pts = make_blobs(150, 3, 3, spread=1.0, domain=50.0, seed=7)
        assert_all_equal(pts, eps=eps, min_pts=4)

    @pytest.mark.parametrize("min_pts", [1, 2, 5, 20, 149, 151])
    def test_min_pts_sweep(self, min_pts):
        pts = make_blobs(140, 2, 2, spread=1.5, domain=30.0, seed=8)
        assert_all_equal(pts, eps=2.5, min_pts=min_pts)


class TestEquivalenceAdversarial:
    def test_all_points_coincident(self):
        # The paper's footnote-1 adversarial case: every range query
        # returns everything.
        pts = np.ones((60, 3))
        ref = assert_all_equal(pts, eps=1.0, min_pts=10)
        assert ref.n_clusters == 1

    def test_all_points_within_eps(self):
        rng = np.random.default_rng(9)
        pts = rng.uniform(0, 0.1, size=(80, 2))
        ref = assert_all_equal(pts, eps=1.0, min_pts=5)
        assert ref.n_clusters == 1
        assert ref.core_mask.all()

    def test_single_point(self):
        pts = np.array([[3.0, 4.0]])
        ref = assert_all_equal(pts, eps=1.0, min_pts=1)
        assert ref.n_clusters == 1
        ref2 = assert_all_equal(pts, eps=1.0, min_pts=2)
        assert ref2.n_clusters == 0

    def test_two_points_at_eps(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        ref = assert_all_equal(pts, eps=1.0, min_pts=2)
        assert ref.n_clusters == 1

    def test_two_points_just_beyond_eps(self):
        pts = np.array([[0.0, 0.0], [1.001, 0.0]])
        ref = assert_all_equal(pts, eps=1.0, min_pts=2)
        assert ref.n_clusters == 0

    def test_all_noise(self):
        pts = np.arange(20, dtype=np.float64).reshape(-1, 1) * 100.0
        ref = assert_all_equal(pts, eps=1.0, min_pts=2)
        assert ref.n_clusters == 0
        assert ref.noise_mask.all()

    def test_min_pts_one_no_noise(self):
        rng = np.random.default_rng(10)
        pts = rng.uniform(0, 100, size=(70, 3))
        ref = assert_all_equal(pts, eps=5.0, min_pts=1)
        assert not ref.noise_mask.any()
        assert ref.core_mask.all()

    def test_duplicated_points(self):
        rng = np.random.default_rng(11)
        base = rng.uniform(0, 10, size=(30, 2))
        pts = np.vstack([base, base, base[:10]])
        assert_all_equal(pts, eps=1.0, min_pts=4)

    def test_chain_of_points(self):
        # A long chain: one cluster through the chained effect.
        pts = np.column_stack([np.arange(50) * 0.9, np.zeros(50)])
        ref = assert_all_equal(pts, eps=1.0, min_pts=3)
        assert ref.n_clusters == 1

    def test_negative_coordinates(self):
        pts = make_blobs(100, 2, 2, spread=1.0, domain=20.0, seed=12) - 50.0
        assert_all_equal(pts, eps=2.0, min_pts=4)

    def test_extreme_scale(self):
        pts = make_blobs(90, 2, 2, spread=1.0, domain=20.0, seed=13) * 1e6
        assert_all_equal(pts, eps=2e6, min_pts=4)

    def test_tiny_scale(self):
        pts = make_blobs(90, 2, 2, spread=1.0, domain=20.0, seed=14) * 1e-6
        assert_all_equal(pts, eps=2e-6, min_pts=4)


class TestKDD96IndexBackends:
    def test_rtree_and_kdtree_agree(self):
        pts = make_blobs(160, 3, 3, spread=1.0, domain=40.0, seed=15)
        a = kdd96_dbscan(pts, 2.5, 5, index="rtree")
        b = kdd96_dbscan(pts, 2.5, 5, index="kdtree")
        assert a.same_clusters(b)
        assert a.meta["index"] == "rtree" and b.meta["index"] == "kdtree"

    def test_first_labels_recorded(self):
        pts = make_blobs(80, 2, 2, spread=1.0, domain=20.0, seed=16)
        res = kdd96_dbscan(pts, 2.0, 4)
        first = res.meta["first_labels"]
        assert len(first) == len(pts)
        # Classic first-come labels agree with canonical labels on cores.
        core = res.core_mask
        assert (first[core] >= 0).all()


@settings(max_examples=25, deadline=None)
@given(
    pts=arrays(
        np.float64,
        st.tuples(st.integers(2, 60), st.integers(1, 4)),
        elements=st.floats(0, 30),
    ),
    eps=st.floats(0.3, 12.0),
    min_pts=st.integers(1, 8),
)
def test_property_all_exact_algorithms_agree(pts, eps, min_pts):
    reference = brute_dbscan(pts, eps, min_pts)
    for fn in (exact_grid_dbscan, cit08_dbscan, kdd96_dbscan):
        got = fn(pts, eps, min_pts)
        assert got.same_clusters(reference)
        assert (got.core_mask == reference.core_mask).all()
