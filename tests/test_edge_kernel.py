"""Differential oracle + property tests for the staged edge kernel.

The contract under test (see ``repro/core/edgekernel.py``): the staged,
batched edge-resolution kernel must produce labels **byte-identical** to
the reference per-pair loop (``kernel="loop"``) on every path that
consumes it — serial exact/approx across bcp strategies and rho values,
parallel shards (pickled and shared-memory transports), and
preunion-seeded sweep steps.  On top of the end-to-end oracle, the stage
certificates are validated directly against the exact edge list: stage A
may accept only true edges, stage B may reject only non-edges.
"""

import numpy as np
import pytest

from repro.core import cellgraph as cg
from repro.core.edgekernel import cell_arrays, classify_pairs, resolve_edges
from repro.core.labeling import label_cores
from repro.engine import ClusteringEngine, StructureCache
from repro.errors import ParameterError
from repro.grid.cells import Grid
from repro.parallel import unpublish_grid
from repro.parallel.executor import (
    ParallelConfig,
    parallel_approx_components,
    parallel_exact_components,
)
from repro.utils.unionfind import DenseUnionFind


def _dataset(seed: int, n: int, d: int, eps: float, min_pts: int):
    rng = np.random.default_rng(seed)
    # Half clustered blobs, half background noise: edges of every kind
    # (dense within-blob accepts, far rejects, borderline survivors).
    centers = rng.uniform(0, 100, size=(4, d))
    blob = centers[rng.integers(0, 4, size=n // 2)] + rng.normal(
        0, 3.0, size=(n // 2, d)
    )
    noise = rng.uniform(0, 100, size=(n - n // 2, d))
    points = np.vstack([blob, noise])
    grid = Grid(points, eps)
    core = label_cores(grid, min_pts)
    return grid, core


class TestSerialOracle:
    @pytest.mark.parametrize("strategy", ["auto", "kdtree", "voronoi"])
    def test_exact_staged_matches_loop(self, strategy):
        grid, core = _dataset(1, 900, 2, 7.0, 5)
        staged = cg.exact_components(grid, core, strategy, kernel="staged")
        loop = cg.exact_components(grid, core, strategy, kernel="loop")
        assert np.array_equal(staged[0], loop[0])
        assert staged[1] == loop[1]

    def test_exact_staged_matches_loop_3d(self):
        grid, core = _dataset(2, 700, 3, 9.0, 4)
        staged = cg.exact_components(grid, core, kernel="staged")
        loop = cg.exact_components(grid, core, kernel="loop")
        assert np.array_equal(staged[0], loop[0])

    @pytest.mark.parametrize("rho", [0.001, 0.1, 0.5])
    def test_approx_staged_matches_loop(self, rho):
        grid, core = _dataset(3, 900, 2, 7.0, 5)
        staged = cg.approx_components(grid, core, rho, kernel="staged")
        loop = cg.approx_components(grid, core, rho, kernel="loop")
        assert np.array_equal(staged[0], loop[0])
        assert staged[1] == loop[1]

    def test_unknown_kernel_rejected(self):
        grid, core = _dataset(4, 60, 2, 7.0, 3)
        with pytest.raises(ParameterError):
            cg.exact_components(grid, core, kernel="vectorised")


class TestPreunionOracle:
    def test_seeded_staged_matches_unseeded(self):
        grid, core = _dataset(5, 800, 2, 7.0, 5)
        base = cg.exact_components(grid, core, kernel="loop")
        seed = cg.edge_list_exact(grid, core)[::3]
        for kernel in ("staged", "loop"):
            seeded = cg.exact_components(grid, core, kernel=kernel, preunion=seed)
            assert np.array_equal(seeded[0], base[0]), kernel
            assert seeded[1] == base[1]

    def test_sweep_carry_byte_identical(self):
        rng = np.random.default_rng(6)
        points = rng.uniform(0, 80, size=(700, 2))
        engine = ClusteringEngine(points, cache=StructureCache())
        for algorithm in ("grid", "approx"):
            swept = engine.sweep([4.0, 6.0, 9.0], 5, algorithm=algorithm, rho=0.05)
            for eps, result in zip([4.0, 6.0, 9.0], swept):
                fresh = (
                    engine.approx_dbscan(eps, 5, rho=0.05)
                    if algorithm == "approx"
                    else engine.dbscan(eps, 5)
                )
                assert np.array_equal(result.labels, fresh.labels), (algorithm, eps)


class TestParallelOracle:
    @pytest.mark.parametrize("shm", [False, True])
    def test_workers_match_serial_loop(self, shm):
        grid, core = _dataset(7, 1200, 2, 6.0, 5)
        cfg = ParallelConfig(workers=3, min_points=0, shm=shm)
        ref_e = cg.exact_components(grid, core, kernel="loop")
        ref_a = cg.approx_components(grid, core, 0.1, kernel="loop")
        try:
            par_e = parallel_exact_components(grid, core, cfg)
            par_a = parallel_approx_components(grid, core, cfg, 0.1)
        finally:
            # Calling the executor directly makes us the grid's owner:
            # the published segment must not outlive the test.
            unpublish_grid(grid)
        assert np.array_equal(par_e[0], ref_e[0]) and par_e[1] == ref_e[1]
        assert np.array_equal(par_a[0], ref_a[0]) and par_a[1] == ref_a[1]

    def test_workers_preunion_match(self):
        grid, core = _dataset(8, 1000, 2, 6.0, 5)
        seed = cg.edge_list_exact(grid, core)[::2]
        ref = cg.exact_components(grid, core, kernel="loop")
        cfg = ParallelConfig(workers=2, min_points=0)
        try:
            par = parallel_exact_components(grid, core, cfg, preunion=seed)
        finally:
            unpublish_grid(grid)
        assert np.array_equal(par[0], ref[0]) and par[1] == ref[1]


class TestStageCertificates:
    """Stage A accepts only true edges; stage B rejects only non-edges."""

    @pytest.mark.parametrize("seed,d", [(10, 2), (11, 3)])
    def test_against_exact_edge_list(self, seed, d):
        grid, core = _dataset(seed, 600, d, 8.0, 4)
        cells = cg.core_cells(grid, core)
        arrays = cell_arrays(grid.points, cells)
        keys, ii, jj = grid.neighbor_cell_pair_arrays(subset=cells.keys())
        true_edges = set()
        for c1, c2 in cg.edge_list_exact(grid, core):
            true_edges.add((c1, c2))
            true_edges.add((c2, c1))
        accept, reject = classify_pairs(grid.points, grid.eps, arrays, ii, jj)
        assert not np.any(accept & reject)
        for t in range(len(ii)):
            pair = (keys[ii[t]], keys[jj[t]])
            if accept[t]:
                assert pair in true_edges, f"stage A accepted non-edge {pair}"
            if reject[t]:
                assert pair not in true_edges, f"stage B rejected true edge {pair}"

    def test_approx_reject_band_is_wider(self):
        grid, core = _dataset(12, 600, 2, 8.0, 4)
        cells = cg.core_cells(grid, core)
        arrays = cell_arrays(grid.points, cells)
        _, ii, jj = grid.neighbor_cell_pair_arrays(subset=cells.keys())
        _, reject_exact = classify_pairs(grid.points, grid.eps, arrays, ii, jj)
        _, reject_approx = classify_pairs(
            grid.points, grid.eps, arrays, ii, jj,
            reject_eps=grid.eps * 1.5,
        )
        # A wider no band can only reject a subset of the exact rejects.
        assert not np.any(reject_approx & ~reject_exact)


class TestKernelInternals:
    def test_resolve_edges_reports_spanning_unions(self):
        grid, core = _dataset(13, 500, 2, 7.0, 4)
        cells = cg.core_cells(grid, core)
        arrays = cell_arrays(grid.points, cells)
        _, ii, jj = grid.neighbor_cell_pair_arrays(subset=cells.keys())
        uf = DenseUnionFind(len(arrays))
        edge = cg.exact_edge_predicate(grid, cells)
        unions = resolve_edges(grid.points, grid.eps, arrays, ii, jj, uf, edge)
        # Every reported union is a distinct candidate position, and the
        # union count is exactly the number of merges the forest saw.
        positions = [t for t, _, _ in unions]
        assert len(positions) == len(set(positions))
        assert len(unions) == len(arrays) - uf.n_components
        # Re-running against the now-connected forest yields nothing new.
        assert resolve_edges(grid.points, grid.eps, arrays, ii, jj, uf, edge) == []

    def test_exact_predicate_structure_seeding(self):
        grid, core = _dataset(14, 500, 2, 7.0, 4)
        cells = cg.core_cells(grid, core)
        shared: dict = {}
        edge = cg.exact_edge_predicate(grid, cells, "kdtree", structures=shared)
        keys = list(cells.keys())
        pairs = [(keys[i], keys[j]) for i, j in zip(range(0, 8), range(1, 9))]
        expected = [edge(c1, c2) for c1, c2 in pairs]
        assert shared, "kdtree predicate must populate the seeded cache"
        # A predicate seeded with the warm cache answers identically.
        warm = cg.exact_edge_predicate(grid, cells, "kdtree", structures=shared)
        assert [warm(c1, c2) for c1, c2 in pairs] == expected

    def test_engine_caches_exact_structures(self):
        rng = np.random.default_rng(15)
        points = rng.uniform(0, 60, size=(500, 2))
        engine = ClusteringEngine(points, cache=StructureCache())
        cold = engine.dbscan(7.0, 4, bcp_strategy="kdtree")
        key = engine._key("exact_structures", 7.0, 4, "kdtree")
        warm_structures = engine.cache.get(key)
        warm = engine.dbscan(7.0, 4, bcp_strategy="kdtree")
        assert np.array_equal(cold.labels, warm.labels)
        if warm_structures is not None:
            # The warm run must not have replaced the cached dict.
            assert engine.cache.get(key) is warm_structures

    def test_counters_funnel_accounts_for_every_pair(self):
        from repro.grid import counters

        grid, core = _dataset(16, 800, 2, 7.0, 5)
        before = counters.snapshot()
        cg.exact_components(grid, core, kernel="staged")
        delta = counters.delta_since(before)
        assert delta["edge_pairs_total"] > 0
        settled = (
            delta.get("edge_quick_accept", 0)
            + delta.get("edge_quick_reject", 0)
            + delta.get("edge_survivors", 0)
            + delta.get("edge_connected_skip", 0)
        )
        assert settled == delta["edge_pairs_total"]
        assert delta.get("edge_survivors", 0) == (
            delta.get("edge_scheduled_skip", 0)
            + delta.get("edge_predicate_tests", 0)
        )

    def test_empty_core_set(self):
        rng = np.random.default_rng(17)
        points = rng.uniform(0, 100, size=(50, 2))
        grid = Grid(points, 1.0)
        core = np.zeros(len(points), dtype=bool)
        labels, k = cg.exact_components(grid, core, kernel="staged")
        assert k == 0
        assert np.all(labels == -1)
