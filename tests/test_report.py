"""Tests for the quick experiment battery (repro.evaluation.report)."""

from repro.evaluation import report


class TestChecks:
    def test_sandwich_check(self):
        c = report._theorem3()
        assert c.holds
        assert "Theorem 3" in c.experiment

    def test_lemma4_check(self):
        c = report._lemma4()
        assert c.holds

    def test_figure10_check(self):
        c = report._figure10()
        assert c.holds


class TestRendering:
    def test_markdown_table(self):
        checks = [
            report.Check("X", "expect", "got", True),
            report.Check("Y", "expect", "got", False),
        ]
        text = report.render_markdown(checks)
        assert "| X | expect | got | yes |" in text
        assert "| Y | expect | got | **NO** |" in text
        assert text.startswith("# Experiment battery")

    def test_main_writes_file(self, tmp_path, monkeypatch):
        # Patch the battery to two instant checks so the CLI path is fast.
        monkeypatch.setattr(
            report, "ALL_CHECKS",
            (lambda: report.Check("a", "b", "c", True),),
        )
        out = str(tmp_path / "summary.md")
        assert report.main([out]) == 0
        with open(out) as fh:
            assert "| a | b | c | yes |" in fh.read()

    def test_main_nonzero_on_failure(self, monkeypatch, capsys):
        monkeypatch.setattr(
            report, "ALL_CHECKS",
            (lambda: report.Check("a", "b", "c", False),),
        )
        assert report.main([]) == 1
        assert "**NO**" in capsys.readouterr().out
