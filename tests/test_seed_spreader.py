"""Tests for the seed-spreader generator (Section 5.1)."""

import numpy as np
import pytest

from repro import config
from repro.data.seed_spreader import figure8_dataset, seed_spreader
from repro.errors import ParameterError


class TestBasics:
    def test_cardinality_and_shape(self):
        ds = seed_spreader(5000, 3, seed=0)
        assert ds.points.shape == (5000, 3)
        assert ds.n == 5000 and ds.dim == 3

    def test_deterministic_under_seed(self):
        a = seed_spreader(1000, 2, seed=42)
        b = seed_spreader(1000, 2, seed=42)
        assert np.array_equal(a.points, b.points)
        assert np.array_equal(a.restart_ids, b.restart_ids)

    def test_different_seeds_differ(self):
        a = seed_spreader(500, 2, seed=1)
        b = seed_spreader(500, 2, seed=2)
        assert not np.array_equal(a.points, b.points)

    def test_noise_count(self):
        ds = seed_spreader(50_000, 3, seed=3)
        assert ds.n_noise == round(50_000 * config.SS_NOISE_FRACTION)
        assert (ds.restart_ids == -1).sum() == ds.n_noise

    def test_restart_ids_contiguous(self):
        ds = seed_spreader(3000, 2, seed=4, noise_fraction=0.0)
        ids = ds.restart_ids
        assert ids.min() == 0
        assert set(ids.tolist()) == set(range(ds.n_restarts))

    def test_about_ten_restarts_by_default(self):
        counts = [seed_spreader(20_000, 3, seed=s).n_restarts for s in range(5)]
        assert 3 <= int(np.mean(counts)) <= 20  # expectation is 10

    def test_forced_first_restart(self):
        ds = seed_spreader(10, 2, seed=5, noise_fraction=0.0)
        assert ds.restart_ids[0] == 0


class TestGeometry:
    def test_points_near_cluster_are_tight(self):
        # Points of one restart segment between shifts stay within the
        # vicinity radius of the (moving) spreader; consecutive points of
        # the same restart are therefore close.
        ds = seed_spreader(2000, 2, seed=6, noise_fraction=0.0)
        pts, ids = ds.points, ds.restart_ids
        same = ids[:-1] == ids[1:]
        step = np.linalg.norm(pts[1:] - pts[:-1], axis=1)
        # Within a restart, consecutive points are at most
        # 2 * vicinity + shift apart.
        bound = 2 * config.SS_VICINITY_RADIUS + 50.0 * 2 + 1e-9
        assert (step[same] <= bound).all()

    def test_clusters_denser_than_noise(self):
        ds = seed_spreader(20_000, 3, seed=7)
        pts = ds.points
        cluster_pts = pts[ds.restart_ids >= 0]
        # Mean nearest-neighbour distance of clustered points must be far
        # below the uniform expectation.
        sample = cluster_pts[:: max(1, len(cluster_pts) // 200)]
        from repro.index.kdtree import KDTree

        tree = KDTree(cluster_pts)
        nn = [np.sqrt(tree.k_nearest(p, 2)[1][1]) for p in sample]
        assert np.mean(nn) < 200.0  # clustered: ~tens; uniform 3D: ~2000+

    def test_domain_mostly_respected(self):
        # Shifts can wander slightly out of the domain; the bulk must be in.
        ds = seed_spreader(5000, 3, seed=8)
        inside = (
            (ds.points >= -1000).all(axis=1)
            & (ds.points <= config.DOMAIN_SIZE + 1000).all(axis=1)
        )
        assert inside.mean() > 0.95


class TestParameters:
    def test_invalid_n(self):
        with pytest.raises(ParameterError):
            seed_spreader(0, 2)

    def test_invalid_d(self):
        with pytest.raises(ParameterError):
            seed_spreader(10, 0)

    def test_invalid_noise_fraction(self):
        with pytest.raises(ParameterError):
            seed_spreader(10, 2, noise_fraction=1.0)

    def test_invalid_counter(self):
        with pytest.raises(ParameterError):
            seed_spreader(10, 2, counter_reset=0)

    def test_custom_shift_radius_recorded(self):
        ds = seed_spreader(100, 2, shift_radius=7.0, seed=9)
        assert ds.params["shift_radius"] == 7.0

    def test_default_shift_radius_is_50d(self):
        ds = seed_spreader(100, 4, seed=10)
        assert ds.params["shift_radius"] == 200.0


class TestFigure8:
    def test_shape(self):
        ds = figure8_dataset()
        assert ds.points.shape == (1000, 2)
        assert ds.n_noise == 0

    def test_has_a_few_restarts(self):
        ds = figure8_dataset()
        assert 2 <= ds.n_restarts <= 10
