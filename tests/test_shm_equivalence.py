"""Differential oracle and lifecycle tests for the shm transport.

The zero-copy shared-memory pipeline (:mod:`repro.parallel.shm`) promises
two things and this suite enforces both:

* **Byte identity** — ``shm=True`` produces the same labels, core mask
  and border memberships as the pickled transport *and* the serial run,
  across dataset shapes, parameters, worker counts, the approximate
  algorithm, the thread backend, and every supervisor recovery rung
  (kill / hang / poison / serial-requeue), including under randomized
  fault schedules.
* **No leaked segments** — the parent owns every ``/dev/shm`` entry and
  unlinks it on success, on every recovery rung, on budget verdicts, on
  ``KeyboardInterrupt``, and under the ``resource_tracker`` (whose shared
  registry a forked worker must never corrupt — the regression test runs
  a whole pipeline in a subprocess and asserts a clean stderr).
"""

import subprocess
import sys

import numpy as np
import pytest

from repro.api import dbscan
from repro.algorithms.approx import approx_dbscan
from repro.config import ConfigError, default_backend, default_shm
from repro.errors import MemoryBudgetExceeded, ParameterError, WorkerPoolError
from repro.grid.cells import Grid
from repro.parallel import ParallelConfig, leaked_segments, publish_grid, unpublish_grid
from repro.parallel import executor
from repro.parallel import shm as shm_transport
from repro.runtime import memory as memory_mod
from repro.runtime.faultinject import inject_faults
from repro.runtime.memory import MemoryBudget
from repro.runtime.resilient import ResiliencePolicy, run_resilient
from repro.service.queue import RequestKey

EPS = 5.0
MIN_PTS = 4


def dataset(n, d, seed=7, span=100.0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, span, size=(n, d))


@pytest.fixture(scope="module")
def points():
    return dataset(400, 2)


@pytest.fixture(scope="module")
def serial(points):
    return dbscan(points, EPS, MIN_PTS, algorithm="grid")


def assert_identical(expected, got, name):
    """Byte-identical labeling: labels, core mask, border memberships."""
    assert np.array_equal(expected.labels, got.labels), f"{name}: labels differ"
    assert np.array_equal(expected.core_mask, got.core_mask), f"{name}: core mask differs"
    for idx in np.flatnonzero(expected.border_mask):
        assert expected.memberships_of(int(idx)) == got.memberships_of(
            int(idx)
        ), f"{name}: border point {idx} has different memberships"


def cfg(workers=2, shm=True, **overrides):
    defaults = dict(workers=workers, min_points=0, shm=shm, shard_timeout=5.0)
    defaults.update(overrides)
    return ParallelConfig(**defaults)


def assert_no_leaks(where):
    assert leaked_segments() == [], f"{where}: leaked /dev/shm segments"


# --------------------------------------------------------------- the oracle


class TestDifferentialOracle:
    """serial == pickled == shm, across the parameter grid."""

    CASES = (
        # (n, dim, eps, min_pts, seed)
        (200, 2, 8.0, 4, 11),
        (400, 3, 14.0, 5, 12),
        (300, 5, 45.0, 3, 13),
        (500, 2, 4.0, 10, 14),
    )

    @pytest.mark.parametrize("n,d,eps,min_pts,seed", CASES)
    @pytest.mark.parametrize("workers", (2, 3))
    def test_exact_grid(self, n, d, eps, min_pts, seed, workers):
        pts = dataset(n, d, seed=seed)
        oracle = dbscan(pts, eps, min_pts, algorithm="grid")
        pickled = dbscan(
            pts, eps, min_pts, algorithm="grid",
            workers=cfg(workers=workers, shm=False),
        )
        shmmed = dbscan(
            pts, eps, min_pts, algorithm="grid", workers=cfg(workers=workers)
        )
        name = f"exact n={n} d={d} workers={workers}"
        assert_identical(oracle, pickled, name + " (pickled)")
        assert_identical(oracle, shmmed, name + " (shm)")
        assert_no_leaks(name)

    @pytest.mark.parametrize("rho", (0.001, 0.1))
    def test_approx(self, points, rho):
        oracle = approx_dbscan(points, EPS, MIN_PTS, rho=rho)
        pickled = approx_dbscan(
            points, EPS, MIN_PTS, rho=rho, workers=cfg(shm=False)
        )
        shmmed = approx_dbscan(points, EPS, MIN_PTS, rho=rho, workers=cfg())
        assert_identical(oracle, pickled, f"approx rho={rho} (pickled)")
        assert_identical(oracle, shmmed, f"approx rho={rho} (shm)")
        assert_no_leaks(f"approx rho={rho}")

    def test_shm_kwarg_on_public_api(self, points, serial):
        """``shm=`` on the public entry points overrides the config."""
        via_kwarg = dbscan(
            points, EPS, MIN_PTS,
            workers=ParallelConfig(workers=2, min_points=0), shm=True,
        )
        assert_identical(serial, via_kwarg, "dbscan(shm=True)")
        assert_no_leaks("dbscan(shm=True)")

    def test_thread_backend(self, points, serial):
        threaded = dbscan(
            points, EPS, MIN_PTS, workers=cfg(backend="thread", shm=False)
        )
        assert_identical(serial, threaded, "thread backend")
        # shm is zero-copy by construction under threads: the knob is
        # accepted and ignored, and no segment is ever published.
        both = dbscan(points, EPS, MIN_PTS, workers=cfg(backend="thread"))
        assert_identical(serial, both, "thread backend + shm")
        assert_no_leaks("thread backend")


# ------------------------------------------------------- segment lifecycle


class TestSegmentLifecycle:
    """Every exit path unlinks the run's segments."""

    def test_no_leak_after_success(self, points, serial):
        result = dbscan(points, EPS, MIN_PTS, workers=cfg())
        assert_identical(serial, result, "success")
        assert_no_leaks("success")

    def test_no_leak_after_worker_kill(self, points, serial):
        with inject_faults(kill_shards=[("cores", 0), ("borders", 0)]) as plan:
            result = dbscan(points, EPS, MIN_PTS, workers=cfg())
            assert plan.worker_faults_fired("kill") >= 1
        assert_identical(serial, result, "worker kill")
        assert result.meta["supervisor"]["respawns"] >= 1
        assert_no_leaks("worker kill")

    def test_no_leak_after_hang_timeout(self, points, serial):
        with inject_faults(hang_shards=[("components", 0)], hang_seconds=30.0):
            result = dbscan(
                points, EPS, MIN_PTS, workers=cfg(shard_timeout=0.5)
            )
        assert_identical(serial, result, "hang")
        assert result.meta["supervisor"]["timeouts"] >= 1
        assert_no_leaks("hang")

    def test_no_leak_after_quarantine(self, points, serial):
        with inject_faults(poison_shards=[("cores", 1)]):
            result = dbscan(
                points, EPS, MIN_PTS, workers=cfg(max_shard_retries=1)
            )
        assert_identical(serial, result, "quarantine")
        assert result.meta["supervisor"]["quarantined"]
        assert_no_leaks("quarantine")

    def test_no_leak_after_pool_exhaustion(self, points):
        broken = cfg(
            shard_timeout=1.0, max_shard_retries=0,
            quarantine=False, max_pool_respawns=0,
        )
        with inject_faults(kill_shards=[("cores", 0)], shard_fault_times=2):
            with pytest.raises(WorkerPoolError):
                dbscan(points, EPS, MIN_PTS, workers=broken)
        assert_no_leaks("pool exhaustion")

    def test_no_leak_after_keyboard_interrupt(self, points, monkeypatch):
        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(executor, "labels_from_dense", interrupted)
        with pytest.raises(KeyboardInterrupt):
            dbscan(points, EPS, MIN_PTS, workers=cfg())
        assert_no_leaks("KeyboardInterrupt")

    def test_explicit_publication_lifecycle(self, points):
        grid = Grid(points, EPS)
        block = publish_grid(grid)
        assert not block.closed
        assert leaked_segments() != []
        # Republication reuses the cached block (one segment per grid).
        assert publish_grid(grid) is block
        unpublish_grid(grid)
        assert block.closed
        assert_no_leaks("explicit unpublish")
        unpublish_grid(grid)  # idempotent


class TestResourceTracker:
    """Forked attachers must not corrupt the shared tracker registry."""

    def test_clean_stderr_end_to_end(self):
        code = (
            "import numpy as np\n"
            "from repro.api import dbscan\n"
            "from repro.parallel import ParallelConfig, leaked_segments\n"
            "pts = np.random.default_rng(3).uniform(0, 100, size=(300, 2))\n"
            "a = dbscan(pts, 5.0, 4)\n"
            "b = dbscan(pts, 5.0, 4, workers=ParallelConfig(\n"
            "    workers=2, min_points=0, shm=True))\n"
            "assert np.array_equal(a.labels, b.labels)\n"
            "assert leaked_segments() == []\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        for marker in ("Traceback", "resource_tracker", "leaked shared_memory"):
            assert marker not in proc.stderr, (
                f"resource_tracker regression — stderr contains {marker!r}:\n"
                + proc.stderr
            )


# ------------------------------------------------------- randomized stress


class TestRandomizedStress:
    """Seeded random datasets + random fault schedules, shm transport.

    Reproducible by construction (one master seed drives everything); run
    by the CI fault-injection job alongside the deterministic suite.
    """

    PHASES = ("cores", "components", "borders")
    FAULTS = ("kill", "hang", "poison", "none")

    @pytest.mark.parametrize("round_seed", range(5))
    def test_random_faults_byte_identical(self, round_seed):
        rng = np.random.default_rng(20260808 + round_seed)
        n = int(rng.integers(150, 450))
        d = int(rng.choice((2, 3)))
        span = 100.0
        eps = float(rng.uniform(4.0, 12.0)) * (1.0 if d == 2 else 2.0)
        min_pts = int(rng.integers(3, 8))
        pts = dataset(n, d, seed=int(rng.integers(0, 2**31)), span=span)
        oracle = dbscan(pts, eps, min_pts, algorithm="grid")

        fault = str(rng.choice(self.FAULTS))
        phase = str(rng.choice(self.PHASES))
        shard = int(rng.integers(0, 2))
        schedule = {}
        if fault == "kill":
            schedule["kill_shards"] = [(phase, shard)]
        elif fault == "hang":
            schedule["hang_shards"] = [(phase, shard)]
            schedule["hang_seconds"] = 30.0
        elif fault == "poison":
            schedule["poison_shards"] = [(phase, shard)]

        par = cfg(
            workers=2,
            shard_timeout=0.75 if fault == "hang" else 5.0,
            max_shard_retries=1,
        )
        with inject_faults(**schedule):
            result = dbscan(pts, eps, min_pts, algorithm="grid", workers=par)
        name = f"stress[{round_seed}] n={n} d={d} fault={fault}@{phase}/{shard}"
        assert_identical(oracle, result, name)
        sup = result.meta["supervisor"]
        if fault in ("kill", "hang") and result.meta["workers"] > 1:
            assert sup["respawns"] >= 1 or sup["timeouts"] >= 1, (
                f"{name}: supervisor ledger recorded no recovery"
            )
        if fault == "poison" and result.meta["workers"] > 1:
            assert sup["quarantined"] or sup["retries"], (
                f"{name}: poison left no supervisor trace"
            )
        assert_no_leaks(name)


# --------------------------------------------------------- memory budgets


class TestMemoryBudget:
    def test_shared_bytes_counted_once(self, monkeypatch):
        monkeypatch.setattr(memory_mod, "current_rss", lambda: 300e6)
        plain = MemoryBudget(limit_mb=400)
        attached = MemoryBudget(limit_mb=400, shared_bytes=250e6)
        # The worker's poll subtracts the fleet-shared segment bytes: the
        # segment is charged once in the parent, not once per attacher.
        assert plain._effective_rss() == 300e6
        assert attached._effective_rss() == 50e6
        attached.check("poll")  # 50 MB effective under a 400 MB limit
        with pytest.raises(MemoryBudgetExceeded):
            plain.charge_estimate(150e6, "phase")
        attached.charge_estimate(150e6, "phase")  # fits after subtraction

    def test_publish_refused_over_budget(self, points):
        grid = Grid(points, EPS)
        tight = MemoryBudget(limit_mb=1)  # RSS alone already exceeds this
        with pytest.raises(MemoryBudgetExceeded):
            publish_grid(grid, memory=tight)
        # Refused before allocation: nothing to unlink, nothing leaked.
        assert getattr(grid, "_shm_publication", None) is None
        assert_no_leaks("refused publication")

    def test_budget_verdict_propagates_through_run(self, points):
        with pytest.raises(MemoryBudgetExceeded):
            dbscan(
                points, EPS, MIN_PTS, workers=cfg(), memory_budget_mb=1
            )
        assert_no_leaks("budgeted run")

    def test_shm_true_infra_failure_raises_pool_error(self, points, monkeypatch):
        def broken_publish(grid, *, memory=None):
            raise OSError("no shm for you")

        monkeypatch.setattr(shm_transport, "publish_grid", broken_publish)
        with pytest.raises(WorkerPoolError):
            dbscan(points, EPS, MIN_PTS, workers=cfg())

    def test_shm_auto_falls_back_to_pickled(self, points, serial, monkeypatch):
        def broken_publish(grid, *, memory=None):
            raise OSError("no shm for you")

        monkeypatch.setattr(shm_transport, "publish_grid", broken_publish)
        result = dbscan(points, EPS, MIN_PTS, workers=cfg(shm="auto"))
        assert_identical(serial, result, "auto fallback")
        assert_no_leaks("auto fallback")

    def test_run_resilient_degrades_when_publish_fails(self, points, monkeypatch):
        def broken_publish(grid, *, memory=None):
            raise OSError("no shm for you")

        monkeypatch.setattr(shm_transport, "publish_grid", broken_publish)
        policy = ResiliencePolicy(workers=cfg(), rho=0.001)
        result = run_resilient(points, EPS, MIN_PTS, policy)
        res = result.meta["resilience"]
        # The grid tiers (exact, approx) die of WorkerPoolError; the
        # cascade must degrade to the serial sampled tier, not crash.
        assert res["tier"] == "sampled"
        assert res["attempts"][0]["error"] == "WorkerPoolError"
        assert_no_leaks("resilient degrade")


# ------------------------------------------------------------ slab details


class TestBorderSlab:
    def two_chains_with_shared_border(self):
        """Two separated chains plus one point on the border of both."""
        xs_a = np.arange(-5.0, 0.01, 0.5)
        xs_b = np.arange(10.0, 15.01, 0.5)
        chain_a = np.stack([xs_a, np.zeros_like(xs_a)], axis=1)
        chain_b = np.stack([xs_b, np.zeros_like(xs_b)], axis=1)
        middle = np.array([[5.0, 0.0]])
        pts = np.concatenate([chain_a, middle, chain_b])
        return pts, len(chain_a)  # middle's index

    def test_multi_membership_border_point(self):
        pts, mid = self.two_chains_with_shared_border()
        eps, min_pts = 5.5, 6
        oracle = dbscan(pts, eps, min_pts, algorithm="grid")
        assert len(oracle.memberships_of(mid)) == 2  # the scenario holds
        result = dbscan(pts, eps, min_pts, workers=cfg())
        assert_identical(oracle, result, "multi-membership border")
        assert_no_leaks("multi-membership border")

    def test_overflow_row_falls_back_to_pickle(self, monkeypatch):
        # Shrink the fixed-width slab so the 2-cluster border row cannot
        # fit and must travel through the pickled overflow side channel.
        monkeypatch.setattr(executor, "BORDER_SLAB_WIDTH", 1)
        pts, mid = self.two_chains_with_shared_border()
        eps, min_pts = 5.5, 6
        oracle = dbscan(pts, eps, min_pts, algorithm="grid")
        result = dbscan(pts, eps, min_pts, workers=cfg())
        assert_identical(oracle, result, "slab overflow")
        assert len(result.memberships_of(mid)) == 2
        assert_no_leaks("slab overflow")


# ------------------------------------------------------------- config knobs


class TestTransportKnobs:
    def test_normalize_shm_strings(self):
        assert ParallelConfig(workers=2, shm="on").shm is True
        assert ParallelConfig(workers=2, shm="off").shm is False
        assert ParallelConfig(workers=2, shm="auto").shm == "auto"
        assert ParallelConfig(workers=2, shm=None).shm is False
        with pytest.raises(ParameterError):
            ParallelConfig(workers=2, shm="maybe")

    def test_backend_validation(self):
        assert ParallelConfig(workers=2, backend="thread").backend == "thread"
        with pytest.raises(ParameterError):
            ParallelConfig(workers=2, backend="greenlet")

    def test_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM", raising=False)
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert default_shm() is False
        assert default_backend() == "process"
        monkeypatch.setenv("REPRO_SHM", "auto")
        assert default_shm() == "auto"
        monkeypatch.setenv("REPRO_SHM", "on")
        assert default_shm() is True
        monkeypatch.setenv("REPRO_SHM", "sideways")
        with pytest.raises(ConfigError):
            default_shm()
        monkeypatch.setenv("REPRO_BACKEND", "thread")
        assert default_backend() == "thread"
        monkeypatch.setenv("REPRO_BACKEND", "fibers")
        with pytest.raises(ConfigError):
            default_backend()

    def test_with_transport(self):
        assert executor.with_transport(None) is None
        base = ParallelConfig(workers=2)
        assert executor.with_transport(base, shm=None) is base
        flipped = executor.with_transport(base, shm=True)
        assert flipped.shm is True and flipped.workers == 2
        assert base.shm is False  # original untouched

    def test_request_key_carries_shm(self):
        a = RequestKey.build("ds", 1.0, 5, shm=True)
        b = RequestKey.build("ds", 1.0, 5, shm=False)
        c = RequestKey.build("ds", 1.0, 5)
        assert a != b and b != c and a != c
        assert len({a, b, c}) == 3  # hashable, distinct coalescing keys
        # Non-primitive values are keyed by repr, like workers.
        d = RequestKey.build("ds", 1.0, 5, shm=ParallelConfig(workers=2))
        assert isinstance(d.shm, str)


# --------------------------------------------------------- engine cache


class TestEngineCachePublication:
    def test_cached_grid_published_once_and_released_on_evict(self, points, serial):
        from repro.engine import ClusteringEngine
        from repro.engine.cache import StructureCache

        engine = ClusteringEngine(points, cache=StructureCache())
        first = engine.dbscan(EPS, MIN_PTS, workers=cfg())
        second = engine.dbscan(EPS, MIN_PTS, workers=cfg())
        assert_identical(serial, first, "engine shm (cold)")
        assert_identical(serial, second, "engine shm (warm)")
        # The cache-held grid keeps its publication alive across runs (no
        # re-pickling, no re-publishing); the cache is the owner of record
        # and unlinks it on eviction/clear.
        pub = engine.grid(EPS)._shm_publication
        assert not pub.closed
        assert pub.name in set(leaked_segments())
        engine.cache.clear()
        assert pub.closed
        assert_no_leaks("engine cache clear")


# ------------------------------------------------------------ attach safety


class TestAttachValidation:
    def test_fingerprint_mismatch_fails_loudly(self, points):
        grid = Grid(points, EPS)
        block = publish_grid(grid)
        try:
            header = dict(block.header)
            header["meta"] = dict(header["meta"], fingerprint="0x0-deadbeef")
            with pytest.raises(ParameterError):
                shm_transport.attach_grid(header)
        finally:
            unpublish_grid(grid)
        assert_no_leaks("fingerprint mismatch")

    def test_attached_grid_matches_and_is_readonly(self, points):
        grid = Grid(points, EPS)
        block = publish_grid(grid)
        try:
            twin = shm_transport.attach_grid(block.header)
            assert twin.points.flags.writeable is False
            assert list(twin.cells.keys()) == list(grid.cells.keys())
            for key in grid.cells:
                assert np.array_equal(twin.cells[key], grid.cells[key])
        finally:
            unpublish_grid(grid)
        assert_no_leaks("attach twin")
