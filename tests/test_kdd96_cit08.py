"""Algorithm-specific tests for the expansion baselines (KDD96, CIT08)."""

import numpy as np
import pytest

from repro.algorithms.cit08 import _EpsGrid, cit08_dbscan
from repro.algorithms.kdd96 import kdd96_dbscan
from repro.errors import ParameterError, TimeoutExceeded

from .conftest import make_blobs


class TestKDD96:
    def test_unknown_index_rejected(self):
        with pytest.raises(ParameterError):
            kdd96_dbscan(np.zeros((3, 2)), 1.0, 2, index="btree")

    def test_one_range_query_per_point(self):
        # The defining cost profile of the original algorithm.
        pts = make_blobs(120, 2, 2, spread=1.0, domain=25.0, seed=0)
        res = kdd96_dbscan(pts, 2.0, 4)
        assert res.meta["range_queries"] == len(pts)

    def test_timeout_raises(self):
        # A dataset where every query returns everything, with a zero
        # budget, must abort with TimeoutExceeded.
        pts = np.zeros((500, 2))
        with pytest.raises(TimeoutExceeded):
            kdd96_dbscan(pts, 1.0, 2, time_budget=0.0)

    def test_no_timeout_when_fast(self):
        pts = make_blobs(80, 2, 2, spread=1.0, domain=20.0, seed=1)
        res = kdd96_dbscan(pts, 2.0, 4, time_budget=60.0)
        assert res.n >= 1

    def test_noise_relabelled_as_border(self):
        # A point visited before its cluster's core must end up a border
        # point, not noise (the classic NOISE -> border revision).
        # Construction: scan order hits the border point first.
        border = np.array([[0.0, 0.0]])
        blob = np.column_stack([np.linspace(0.9, 1.35, 10), np.zeros(10)])
        pts = np.vstack([border, blob])
        res = kdd96_dbscan(pts, 1.0, 5)
        assert not res.core_mask[0]
        assert res.labels[0] != -1  # border, not noise


class TestCIT08:
    def test_grid_cells_metadata(self):
        pts = make_blobs(100, 2, 2, spread=1.0, domain=25.0, seed=2)
        res = cit08_dbscan(pts, 2.0, 4)
        assert res.meta["grid_cells"] >= 1

    def test_timeout_raises(self):
        pts = np.zeros((500, 2))
        with pytest.raises(TimeoutExceeded):
            cit08_dbscan(pts, 1.0, 2, time_budget=0.0)

    def test_region_query_matches_brute(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 20, size=(150, 3))
        eps = 2.5
        grid = _EpsGrid(pts, eps)
        for i in range(0, 150, 17):
            got = sorted(grid.region_query(i).tolist())
            sq = ((pts - pts[i]) ** 2).sum(axis=1)
            expected = np.nonzero(sq <= eps * eps)[0].tolist()
            assert got == expected

    def test_region_query_includes_self(self):
        pts = np.array([[5.0, 5.0], [100.0, 100.0]])
        grid = _EpsGrid(pts, 1.0)
        assert 0 in grid.region_query(0).tolist()

    def test_eps_grid_cell_side_is_eps(self):
        pts = np.array([[0.5, 0.5], [1.5, 0.5]])
        grid = _EpsGrid(pts, 1.0)
        assert len(grid.cells) == 2  # side 1.0 puts them in adjacent cells
