"""Tests for the clustering service: registry, admission, coalescing, tiers.

The acceptance bar for the service front-end:

* N identical concurrent requests execute the clustering **exactly once**
  (verified through :meth:`ClusteringEngine.run_counts`, the engine-level
  execution counter) and every response is byte-identical to a direct
  ``dbscan()`` call on the same data;
* under synthetic overload, every excess request is shed or degraded with
  a structured, machine-readable verdict — never an unbounded queue and
  never a silent hang;
* every accepted request's response records ``{tier, reason}``.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.engine import ClusteringEngine
from repro.errors import (
    DatasetQuarantinedError,
    ParameterError,
    ServiceError,
    ServiceOverloadError,
    TimeoutExceeded,
    UnknownDatasetError,
)
from repro.runtime.deadline import Deadline, tightest
from repro.service import (
    AdmissionController,
    AdmissionPolicy,
    CircuitBreaker,
    ClusteringService,
    DatasetRegistry,
    RequestKey,
    ServiceClient,
)
from repro.service.server import error_payload

EPS = 6.0
MIN_PTS = 5


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(42)
    return np.vstack([
        rng.normal(25.0, 2.0, size=(150, 2)),
        rng.normal(70.0, 3.0, size=(150, 2)),
        rng.uniform(0.0, 100.0, size=(40, 2)),
    ])


@pytest.fixture()
def client(points):
    with ServiceClient(policy=AdmissionPolicy(max_queue=16)) as c:
        c.register("blobs", points)
        yield c


# --------------------------------------------------------------- request key


class TestRequestKey:
    def test_normalises_types(self):
        a = RequestKey.build("ds", 1, 5)
        b = RequestKey.build("ds", 1.0, 5.0)
        assert a == b and hash(a) == hash(b)

    def test_distinct_parameters_distinct_keys(self):
        base = RequestKey.build("ds", 1.0, 5)
        assert RequestKey.build("ds", 2.0, 5) != base
        assert RequestKey.build("ds", 1.0, 6) != base
        assert RequestKey.build("ds", 1.0, 5, rho=0.01) != base
        assert RequestKey.build("ds", 1.0, 5, workers=2) != base
        assert RequestKey.build("other", 1.0, 5) != base

    def test_requested_tier_distinguishes_keys(self):
        # An explicit sampled request must not share a flight with an
        # approx one — coalescing must never downgrade quality.
        approx = RequestKey.build("ds", 1.0, 5, algorithm="approx",
                                  requested="approx")
        sampled = RequestKey.build("ds", 1.0, 5, algorithm="approx",
                                   requested="sampled")
        assert approx != sampled

    def test_unhashable_workers_fall_back_to_repr(self):
        from repro.parallel import ParallelConfig

        key = RequestKey.build("ds", 1.0, 5, workers=ParallelConfig(workers=2))
        assert isinstance(key.workers, str)
        assert hash(key)  # hashable


# ---------------------------------------------------------------- admission


class TestAdmission:
    def test_sheds_past_queue_bound(self):
        ctl = AdmissionController(AdmissionPolicy(max_queue=2))
        ctl.admit()
        ctl.admit()
        with pytest.raises(ServiceOverloadError) as err:
            ctl.admit()
        assert err.value.reason == "queue-full"
        assert err.value.queue_depth == 2
        assert err.value.limit == 2
        assert err.value.retry_after is not None
        ctl.release()
        ctl.admit()  # capacity freed -> admitted again

    def test_sheds_expired_deadline(self):
        ctl = AdmissionController(AdmissionPolicy(max_queue=8))
        dl = Deadline(1e-9)
        time.sleep(0.001)
        with pytest.raises(ServiceOverloadError) as err:
            ctl.admit(dl)
        assert err.value.reason == "deadline-expired"
        assert ctl.depth == 0  # never counted in

    def test_ladder_degrades_with_queue_pressure(self):
        policy = AdmissionPolicy(max_queue=4, degrade_pressure=0.5,
                                 sample_pressure=0.85)
        ctl = AdmissionController(policy)
        assert ctl.choose_tier("exact") == ("exact", "requested")
        ctl.admit(), ctl.admit()
        tier, reason = ctl.choose_tier("exact")
        assert tier == "approx" and "queue-pressure" in reason
        # An approx request at the same pressure is NOT degraded further.
        assert ctl.choose_tier("approx")[0] == "approx"
        ctl.admit(), ctl.admit()
        assert ctl.choose_tier("exact")[0] == "sampled"
        assert ctl.choose_tier("approx")[0] == "sampled"

    def test_memory_pressure_forces_sampled_tier(self):
        # A 1 MB budget is far below any real interpreter RSS, so the
        # memory leg trips deterministically.
        ctl = AdmissionController(AdmissionPolicy(memory_budget_mb=1.0))
        tier, reason = ctl.choose_tier("exact")
        assert tier == "sampled"
        assert "memory-pressure" in reason

    def test_policy_validation(self):
        with pytest.raises(ParameterError):
            AdmissionPolicy(max_queue=0)
        with pytest.raises(ParameterError):
            AdmissionPolicy(degrade_pressure=0.9, sample_pressure=0.5)
        with pytest.raises(ParameterError):
            AdmissionPolicy(retry_attempts=0)


class TestCircuitBreaker:
    def test_opens_after_threshold_and_cools_down(self):
        brk = CircuitBreaker(threshold=2, cooldown=60.0)
        brk.check("ds")
        assert brk.record_failure("ds") == 1
        brk.check("ds")  # still closed
        assert brk.record_failure("ds") == 2
        with pytest.raises(DatasetQuarantinedError) as err:
            brk.check("ds")
        assert err.value.failures == 2
        assert err.value.retry_after > 0
        assert brk.snapshot()["ds"]["open"]

    def test_half_open_allows_one_probe(self):
        brk = CircuitBreaker(threshold=1, cooldown=0.01)
        brk.record_failure("ds")
        time.sleep(0.02)
        brk.check("ds")  # the single half-open probe passes
        with pytest.raises(DatasetQuarantinedError):
            brk.check("ds")  # everyone else stays quarantined
        brk.record_success("ds")
        brk.check("ds")  # closed again
        assert brk.snapshot() == {}

    def test_failed_probe_reopens(self):
        brk = CircuitBreaker(threshold=1, cooldown=0.01)
        brk.record_failure("ds")
        time.sleep(0.02)
        brk.check("ds")
        brk.record_failure("ds")  # probe failed
        with pytest.raises(DatasetQuarantinedError):
            brk.check("ds")

    def test_check_reports_probe_ownership(self):
        brk = CircuitBreaker(threshold=1, cooldown=0.01)
        assert brk.check("ds") is False  # closed: not a probe
        brk.record_failure("ds")
        time.sleep(0.02)
        assert brk.check("ds") is True  # the single half-open probe

    def test_aborted_probe_frees_the_slot(self):
        # Regression: a probe that exits without reaching
        # record_success/record_failure (shed by admission, invalid
        # parameters, budget verdict) must free the half-open slot — a
        # leaked probing flag quarantined the dataset forever.
        brk = CircuitBreaker(threshold=1, cooldown=0.01)
        brk.record_failure("ds")
        time.sleep(0.02)
        assert brk.check("ds") is True
        with pytest.raises(DatasetQuarantinedError):
            brk.check("ds")  # slot taken
        brk.probe_aborted("ds")  # probe never got a verdict
        assert brk.check("ds") is True  # the next request may probe

    def test_probe_aborted_after_verdict_is_noop(self):
        brk = CircuitBreaker(threshold=1, cooldown=0.01)
        brk.record_failure("ds")
        time.sleep(0.02)
        assert brk.check("ds") is True
        brk.record_success("ds")
        brk.probe_aborted("ds")  # late abort after success: no effect
        assert brk.snapshot() == {}
        assert brk.check("ds") is False

    def test_datasets_isolated(self):
        brk = CircuitBreaker(threshold=1, cooldown=60.0)
        brk.record_failure("bad")
        brk.check("good")  # unaffected


# ----------------------------------------------------------------- registry


class TestRegistry:
    def test_register_and_lookup(self, points):
        reg = DatasetRegistry()
        info = reg.register("a", points)
        assert info["n"] == len(points) and info["tenant"] == "default"
        assert "a" in reg and len(reg) == 1
        assert reg.get("a").engine.matches(points)

    def test_unknown_dataset_error_lists_known(self, points):
        reg = DatasetRegistry()
        reg.register("a", points)
        with pytest.raises(UnknownDatasetError) as err:
            reg.get("b")
        assert err.value.known == ("a",)
        assert "registered" in str(err.value)

    def test_reregister_same_data_idempotent(self, points):
        reg = DatasetRegistry()
        reg.register("a", points)
        reg.register("a", points)  # no error
        assert len(reg) == 1

    def test_reregister_different_data_rejected(self, points):
        reg = DatasetRegistry()
        reg.register("a", points)
        with pytest.raises(ParameterError, match="different data"):
            reg.register("a", points * 2.0)

    def test_needs_exactly_one_source(self, points):
        reg = DatasetRegistry()
        with pytest.raises(ParameterError):
            reg.register("a")
        with pytest.raises(ParameterError):
            reg.register("a", points, "/tmp/also.csv")

    def test_register_from_path(self, points, tmp_path):
        path = str(tmp_path / "pts.csv")
        np.savetxt(path, points, delimiter=",")
        reg = DatasetRegistry()
        info = reg.register("file", path=path)
        assert info["source"] == path and info["n"] == len(points)

    def test_capacity_bound(self, points):
        reg = DatasetRegistry(max_datasets=1)
        reg.register("a", points)
        with pytest.raises(ParameterError, match="full"):
            reg.register("b", points * 0.5)
        assert reg.unregister("a")
        reg.register("b", points * 0.5)

    def test_tenants_get_separate_quota_caches(self, points):
        reg = DatasetRegistry(tenant_quota_mb=8.0)
        reg.register("a", points, tenant="t1")
        reg.register("b", points * 0.5, tenant="t2")
        cache_a = reg.get("a").engine.cache
        cache_b = reg.get("b").engine.cache
        assert cache_a is not cache_b
        assert cache_a.max_mb == 8.0
        reg.set_tenant_quota("t1", 2.0)
        assert cache_a.max_mb == 2.0 and cache_b.max_mb == 8.0

    def test_same_tenant_shares_cache(self, points):
        reg = DatasetRegistry()
        reg.register("a", points, tenant="t")
        reg.register("b", points * 0.5, tenant="t")
        assert reg.get("a").engine.cache is reg.get("b").engine.cache


# --------------------------------------------------------------- coalescing


class TestCoalescing:
    def test_identical_concurrent_requests_execute_exactly_once(
        self, client, points
    ):
        n = 8
        results = client.cluster_many(
            [{"dataset": "blobs", "eps": EPS, "min_pts": MIN_PTS}] * n,
            timeout=120,
            return_exceptions=False,
        )
        engine = client.service.registry.get("blobs").engine
        assert engine.runs_executed == 1, engine.run_counts()
        direct = ClusteringEngine(points).dbscan(EPS, MIN_PTS)
        for res in results:
            assert res.labels.tobytes() == direct.labels.tobytes()
            assert np.array_equal(res.core_mask, direct.core_mask)
        flags = sorted(r.meta["service"]["coalesced"] for r in results)
        assert flags == [False] + [True] * (n - 1)
        stats = client.stats()
        assert stats["executed"] == 1
        assert stats["coalesced"] == n - 1
        assert stats["accepted"] == n

    def test_distinct_requests_do_not_coalesce(self, client):
        results = client.cluster_many(
            [
                {"dataset": "blobs", "eps": EPS, "min_pts": MIN_PTS},
                {"dataset": "blobs", "eps": EPS * 1.5, "min_pts": MIN_PTS},
            ],
            timeout=120,
            return_exceptions=False,
        )
        assert client.service.registry.get("blobs").engine.runs_executed == 2
        assert all(not r.meta["service"]["coalesced"] for r in results)

    def test_sequential_repeats_rerun_through_cache(self, client):
        # Coalescing only covers the concurrent window; sequential repeats
        # go to the engine, whose structure cache makes them cheap.
        client.cluster("blobs", EPS, MIN_PTS, timeout=120)
        client.cluster("blobs", EPS, MIN_PTS, timeout=120)
        assert client.service.registry.get("blobs").engine.runs_executed == 2

    def test_sampled_and_approx_requests_do_not_coalesce(self, points):
        # Regression: the key once conflated explicit "sampled" and
        # "approx" requests, silently serving the approx caller the
        # low-quality sampled result.
        with ServiceClient(policy=AdmissionPolicy(max_queue=8)) as client:
            client.register("blobs", points)
            release = threading.Event()
            started = threading.Event()
            _blocking_execute(client.service, release, started)
            leader = client.submit(
                client.service.cluster("blobs", EPS, MIN_PTS, tier="sampled")
            )
            started.wait(timeout=30)
            other = client.submit(
                client.service.cluster("blobs", EPS, MIN_PTS, tier="approx")
            )
            release.set()
            sampled = leader.result(timeout=120)
            approx = other.result(timeout=120)
            assert sampled["tier"] == "sampled"
            assert approx["tier"] == "approx"  # not the sampled flight's
            assert not approx["coalesced"]
            assert client.stats()["coalesced"] == 0
            assert client.stats()["executed"] == 2


# ------------------------------------------------------ degradation + tiers


class TestDegradation:
    def test_response_always_records_tier_and_reason(self, client):
        res = client.cluster("blobs", EPS, MIN_PTS, timeout=120)
        svc = res.meta["service"]
        assert svc["tier"] == "exact" and svc["reason"] == "requested"
        assert "guarantee" in svc

    def test_requested_approx_and_sampled_tiers(self, client, points):
        res = client.cluster("blobs", EPS, MIN_PTS, rho=0.01, timeout=120)
        assert res.meta["service"]["tier"] == "approx"
        direct = ClusteringEngine(points).approx_dbscan(EPS, MIN_PTS, rho=0.01)
        assert res.labels.tobytes() == direct.labels.tobytes()

        res = client.cluster("blobs", EPS, MIN_PTS, tier="sampled", timeout=120)
        assert res.meta["service"]["tier"] == "sampled"
        assert res.n == len(points)

    def test_queue_pressure_degrades_exact_to_approx(self, points):
        policy = AdmissionPolicy(max_queue=4, degrade_pressure=0.5,
                                 sample_pressure=0.9)
        with ServiceClient(policy=policy) as client:
            client.register("blobs", points)
            ctl = client.service.admission
            ctl.admit(), ctl.admit()  # synthetic standing load
            try:
                res = client.cluster("blobs", EPS, MIN_PTS, timeout=120)
            finally:
                ctl.release(), ctl.release()
            svc = res.meta["service"]
            assert svc["tier"] == "approx"
            assert svc["requested"] == "exact"
            assert "queue-pressure" in svc["reason"]
            assert client.stats()["degraded"] == 1
            assert client.stats()["tiers"] == {"approx": 1}

    def test_extreme_pressure_degrades_to_sampled(self, points):
        policy = AdmissionPolicy(max_queue=4, degrade_pressure=0.25,
                                 sample_pressure=0.75)
        with ServiceClient(policy=policy) as client:
            client.register("blobs", points)
            ctl = client.service.admission
            for _ in range(3):
                ctl.admit()
            try:
                res = client.cluster("blobs", EPS, MIN_PTS, timeout=120)
            finally:
                for _ in range(3):
                    ctl.release()
            assert res.meta["service"]["tier"] == "sampled"
            # The sampled tier is still a full labeling of the dataset.
            assert res.n == len(points)

    def test_unknown_tier_rejected(self, client):
        with pytest.raises(ParameterError):
            client.cluster("blobs", EPS, MIN_PTS, tier="psychic", timeout=30)


# ----------------------------------------------------------------- overload


def _blocking_execute(service, release, started=None):
    """Monkeypatch service._execute to park until ``release`` is set."""
    real = service._execute

    def execute(entry, job):
        if started is not None:
            started.set()
        assert release.wait(timeout=60), "test forgot to release the executor"
        return real(entry, job)

    service._execute = execute


class TestOverload:
    def test_excess_requests_shed_immediately_with_structured_error(
        self, points
    ):
        policy = AdmissionPolicy(max_queue=2, max_concurrency=1)
        with ServiceClient(policy=policy) as client:
            client.register("blobs", points)
            release = threading.Event()
            started = threading.Event()
            _blocking_execute(client.service, release, started)
            futures = [
                client.submit(
                    client.service.cluster("blobs", EPS + i, MIN_PTS)
                )
                for i in range(8)  # distinct keys: no coalescing relief
            ]
            started.wait(timeout=30)
            # The bound admits 2; the other 6 must be shed *while the
            # executor is still parked* — the queue never grows past the
            # bound and rejection does not wait for capacity.
            t0 = time.monotonic()
            while client.stats()["rejected"] < 6:
                assert time.monotonic() - t0 < 10, client.stats()
                time.sleep(0.01)
            assert client.service.admission.depth == 2
            release.set()
            outcomes = []
            for fut in futures:
                try:
                    outcomes.append(fut.result(timeout=60))
                except ServiceOverloadError as exc:
                    assert exc.reason == "queue-full"
                    assert exc.limit == 2
                    outcomes.append(exc)
            shed = [o for o in outcomes if isinstance(o, ServiceOverloadError)]
            served = [o for o in outcomes if not isinstance(o, Exception)]
            assert len(shed) == 6
            assert len(served) == 2
            for response in served:
                assert response["tier"] and response["reason"]
            stats = client.stats()
            assert stats["rejected"] == 6
            assert stats["accepted"] == 2
            assert stats["expired"] == 0  # admission sheds, not expiries
            assert client.service.admission.depth == 0  # fully drained

    def test_waiter_deadline_enforced_while_coalesced(self, points):
        with ServiceClient(policy=AdmissionPolicy(max_queue=8)) as client:
            client.register("blobs", points)
            release = threading.Event()
            started = threading.Event()
            _blocking_execute(client.service, release, started)
            leader = client.submit(
                client.service.cluster("blobs", EPS, MIN_PTS)
            )
            started.wait(timeout=30)
            waiter = client.submit(
                client.service.cluster(
                    "blobs", EPS, MIN_PTS, time_budget=0.05
                )
            )
            with pytest.raises(ServiceOverloadError) as err:
                waiter.result(timeout=30)
            assert err.value.reason == "deadline-expired"
            release.set()
            response = leader.result(timeout=60)
            assert response["tier"] == "exact"  # leader unaffected
            stats = client.stats()
            # The waiter was accepted, then shed post-admission: counted
            # as expired, not rejected — accepted/rejected stay disjoint.
            assert stats["accepted"] == 2
            assert stats["expired"] == 1
            assert stats["rejected"] == 0

    def test_expired_deadline_shed_before_any_work(self, client):
        with pytest.raises(ServiceOverloadError) as err:
            client.cluster("blobs", EPS, MIN_PTS, time_budget=1e-9, timeout=30)
        assert err.value.reason == "deadline-expired"
        assert client.stats()["executed"] == 0


# ------------------------------------------------------------- deadline glue


class TestDeadlineHelpers:
    def test_tightest_picks_earliest_expiry(self):
        loose = Deadline(100.0)
        tight = Deadline(0.5)
        assert tightest(loose, tight) is tight
        assert tightest(None, loose) is loose
        assert tightest(None, None) is None
        assert tightest(Deadline(None), loose) is loose

    def test_flat_hierarchy_honours_deadline(self, points):
        from repro.grid.hierarchy import FlatHierarchy

        structure = FlatHierarchy(points, EPS, rho=0.01)
        dl = Deadline(1e-9)
        time.sleep(0.001)
        with pytest.raises(TimeoutExceeded):
            structure.count_many(points[:50], deadline=dl)
        with pytest.raises(TimeoutExceeded):
            structure.any_contains(points[:50], deadline=dl)
        # Without a deadline the same queries answer fine.
        assert len(structure.count_many(points[:50])) == 50


# ------------------------------------------------------------ error payloads


class TestErrorPayloads:
    def test_service_errors_structured(self):
        overload = ServiceOverloadError(
            "q full", reason="queue-full", queue_depth=4, limit=4,
            retry_after=1.0,
        )
        payload = error_payload(overload)
        assert payload["code"] == "overload"
        assert payload["reason"] == "queue-full"
        assert payload["retry_after"] == 1.0
        assert json.dumps(payload)  # JSON-safe

        payload = error_payload(UnknownDatasetError("x", known=("a",)))
        assert payload["code"] == "unknown-dataset"
        payload = error_payload(DatasetQuarantinedError("x", 3, 2.5))
        assert payload["code"] == "quarantined"

    def test_library_errors_mapped_to_taxonomy(self):
        assert error_payload(TimeoutExceeded(2.0, 1.0))["code"] == "timeout"
        assert error_payload(ParameterError("p"))["code"] == "parameter"
        assert error_payload(ValueError("v"))["code"] == "internal"

    def test_service_errors_pickle_roundtrip(self):
        import pickle

        for exc in (
            ServiceOverloadError("m", reason="queue-full", queue_depth=1,
                                 limit=2, retry_after=0.5),
            UnknownDatasetError("x", known=("a", "b")),
            DatasetQuarantinedError("x", 3, 1.5),
        ):
            clone = pickle.loads(pickle.dumps(exc))
            assert type(clone) is type(exc)
            assert clone.as_dict() == exc.as_dict()

    def test_overload_is_a_service_error(self):
        assert issubclass(ServiceOverloadError, ServiceError)


# ------------------------------------------------------------- wire handler


class TestWireHandle:
    def _handle(self, client, request):
        return client.submit(client.service.handle(request)).result(30)

    def test_missing_fields_answer_parameter_error(self, client):
        response = self._handle(
            client, {"id": 1, "op": "cluster", "dataset": "blobs"}
        )
        assert response["ok"] is False
        assert response["error"]["code"] == "parameter"
        assert "eps" in response["error"]["message"]
        assert "min_pts" in response["error"]["message"]

    def test_register_requires_name(self, client):
        response = self._handle(client, {"id": 2, "op": "register"})
        assert response["ok"] is False
        assert response["error"]["code"] == "parameter"
        assert "name" in response["error"]["message"]

    def test_internal_keyerror_not_masked_as_caller_mistake(self, client):
        # Regression: a blanket ``except KeyError`` used to report any
        # KeyError escaping library code as a missing request field.
        async def boom(*args, **kwargs):
            raise KeyError("internal-lookup")

        client.service.cluster = boom
        response = self._handle(
            client,
            {"id": 3, "op": "cluster", "dataset": "blobs",
             "eps": EPS, "min_pts": MIN_PTS},
        )
        assert response["ok"] is False
        assert response["error"]["code"] == "internal"
        assert "KeyError" in response["error"]["message"]
