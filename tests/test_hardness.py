"""Tests for the hardness machinery: USEC, Lemma 4, Hopcroft, lifting map."""

from fractions import Fraction

import numpy as np
import pytest

from repro.api import dbscan
from repro.algorithms.approx import approx_dbscan
from repro.errors import DataError, ParameterError
from repro.hardness import hopcroft as hp
from repro.hardness import usec


def grid_solver(P, eps, min_pts):
    return dbscan(P, eps, min_pts, algorithm="grid")


def brute_solver(P, eps, min_pts):
    return dbscan(P, eps, min_pts, algorithm="brute")


class TestUSECInstance:
    def test_size(self):
        inst = usec.USECInstance(np.zeros((3, 2)), np.ones((4, 2)), 1.0)
        assert inst.size == 7

    def test_dimension_mismatch(self):
        with pytest.raises(DataError):
            usec.USECInstance(np.zeros((3, 2)), np.ones((4, 3)), 1.0)

    def test_bad_radius(self):
        with pytest.raises(ParameterError):
            usec.USECInstance(np.zeros((3, 2)), np.ones((4, 2)), 0.0)


class TestUSECBrute:
    def test_yes_instance(self):
        inst = usec.USECInstance(
            np.array([[0.0, 0.0]]), np.array([[0.5, 0.0]]), 1.0
        )
        assert usec.usec_brute(inst)

    def test_no_instance(self):
        inst = usec.USECInstance(
            np.array([[0.0, 0.0]]), np.array([[5.0, 0.0]]), 1.0
        )
        assert not usec.usec_brute(inst)

    def test_boundary_inclusive(self):
        inst = usec.USECInstance(
            np.array([[0.0, 0.0]]), np.array([[1.0, 0.0]]), 1.0
        )
        assert usec.usec_brute(inst)


class TestLemma4Reduction:
    """The executable proof: USEC via any DBSCAN algorithm == brute USEC."""

    @pytest.mark.parametrize("solver", [grid_solver, brute_solver])
    @pytest.mark.parametrize("seed", range(10))
    def test_random_instances_3d(self, solver, seed):
        inst = usec.random_instance(40, 30, 3, radius=20.0, seed=seed)
        assert usec.usec_via_dbscan(inst, solver) == usec.usec_brute(inst)

    @pytest.mark.parametrize("d", [2, 3, 4, 5])
    def test_dimensions(self, d):
        for seed in range(4):
            inst = usec.random_instance(30, 20, d, radius=35.0, seed=seed)
            assert usec.usec_via_dbscan(inst, grid_solver) == usec.usec_brute(inst)

    @pytest.mark.parametrize("answer", [True, False])
    def test_planted_instances(self, answer):
        for seed in range(5):
            inst = usec.planted_instance(25, 12, 3, radius=10.0, answer=answer, seed=seed)
            assert usec.usec_brute(inst) == answer
            assert usec.usec_via_dbscan(inst, grid_solver) == answer

    def test_chained_coverage_still_detected(self):
        # The reduction must answer yes even when the covered point connects
        # to the centre only through other points (the "Case 1" chain of the
        # Lemma 4 proof): point p in ball of c, and extra points between.
        points = np.array([[0.0, 0.0], [0.8, 0.0]])
        centers = np.array([[1.5, 0.0]])
        inst = usec.USECInstance(points, centers, 1.0)
        assert usec.usec_brute(inst)  # (0.8,0) is within 1.0 of (1.5,0)
        assert usec.usec_via_dbscan(inst, grid_solver)

    def test_no_false_positive_through_point_chains(self):
        # Points chained among themselves, but none inside any ball:
        # must answer no even though all points form one cluster.
        points = np.array([[0.0, 0.0], [0.9, 0.0], [1.8, 0.0]])
        centers = np.array([[10.0, 0.0]])
        inst = usec.USECInstance(points, centers, 1.0)
        assert not usec.usec_brute(inst)
        assert not usec.usec_via_dbscan(inst, grid_solver)

    def test_center_chains_no_false_positive(self):
        # Centres chained among themselves must not create a yes either.
        points = np.array([[10.0, 10.0]])
        centers = np.array([[0.0, 0.0], [0.9, 0.0]])
        inst = usec.USECInstance(points, centers, 1.0)
        assert not usec.usec_via_dbscan(inst, grid_solver)

    def test_approx_dbscan_as_solver_on_robust_instances(self):
        # rho-approximate DBSCAN also works as the black box when the
        # instance is not adversarially close to the boundary.
        def approx_solver(P, eps, min_pts):
            return approx_dbscan(P, eps, min_pts, rho=0.001)

        for seed in range(5):
            inst = usec.planted_instance(25, 12, 3, radius=10.0, answer=True, seed=seed)
            assert usec.usec_via_dbscan(inst, approx_solver)


class TestHopcroft:
    def test_brute_incident(self):
        inst = hp.HopcroftInstance(
            np.array([[1.0, 1.0]]), (hp.Line(1.0, -1.0, 0.0),)  # y = x
        )
        assert hp.hopcroft_brute(inst, tol=0.0)

    def test_brute_not_incident(self):
        inst = hp.HopcroftInstance(
            np.array([[1.0, 2.5]]), (hp.Line(1.0, -1.0, 0.0),)
        )
        assert not hp.hopcroft_brute(inst)

    def test_exact_int(self):
        assert hp.hopcroft_exact_int([(2, 3)], [(3, -2, 0)])  # 3*2 - 2*3 = 0
        assert not hp.hopcroft_exact_int([(2, 3)], [(1, 0, 5)])

    def test_degenerate_line_rejected(self):
        with pytest.raises(DataError):
            hp.Line(0.0, 0.0, 1.0)

    @pytest.mark.parametrize("incident", [True, False])
    def test_random_planted(self, incident):
        for seed in range(8):
            inst = hp.random_instance(25, 10, incident=incident, seed=seed)
            assert hp.hopcroft_brute(inst) == incident


class TestLiftingMap:
    def test_point_on_circle_iff_lift_on_plane_exact(self):
        # Verify the algebraic identity with rational arithmetic.
        circle = hp.Circle(Fraction(3), Fraction(4), Fraction(5))
        plane = hp.lift_circle(circle)
        on = (Fraction(0), Fraction(0))          # 3^2+4^2 = 5^2: on the circle
        off = (Fraction(1), Fraction(0))
        for (x, y), expect in ((on, True), (off, False)):
            z = x * x + y * y
            value = plane.u * x + plane.v * y + plane.w * z + plane.t
            assert (value == 0) == expect

    def test_lift_incidence_matrix(self):
        rng = np.random.default_rng(0)
        circles = [hp.Circle(1.0, 2.0, 2.0), hp.Circle(-3.0, 0.0, 1.0)]
        # Points: one exactly on each circle, several off.
        pts = np.array([
            [1.0, 4.0],    # on circle 1 (distance 2 from (1,2))
            [-2.0, 0.0],   # on circle 2
            [10.0, 10.0],  # off both
        ])
        lifted, planes = hp.lift_incidence(pts, circles)
        values = np.array([[pl.evaluate(p) for pl in planes] for p in lifted])
        assert abs(values[0, 0]) < 1e-9
        assert abs(values[1, 1]) < 1e-9
        assert abs(values[2, 0]) > 1e-6 and abs(values[2, 1]) > 1e-6

    def test_inside_disk_is_below_plane(self):
        circle = hp.Circle(0.0, 0.0, 2.0)
        plane = hp.lift_circle(circle)
        inside = hp.lift_point(0.5, 0.5)
        outside = hp.lift_point(5.0, 0.0)
        assert plane.evaluate(inside) < 0
        assert plane.evaluate(outside) > 0

    def test_lift_rejects_bad_shape(self):
        with pytest.raises(DataError):
            hp.lift_incidence(np.zeros((3, 3)), [hp.Circle(0, 0, 1)])

    def test_circle_needs_positive_radius(self):
        with pytest.raises(DataError):
            hp.Circle(0.0, 0.0, 0.0)
