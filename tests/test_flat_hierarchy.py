"""Differential and property tests for the flat batched Lemma 5 kernel.

:class:`~repro.grid.FlatHierarchy` must be the *same structure* as the
reference :class:`~repro.grid.CountingHierarchy` — identical node set,
identical Lemma 5 contract — with batched answers equal to its own looped
answers everywhere, equal to the reference's answers wherever the contract
is exact (the don't-care band may round differently between the two
traversals), and inside the brute-force sandwich always.  The suite also
pins the integration seams: workers>1, engine-cache reuse, and the
``kernel_counters`` observability channel.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ClusteringEngine, StructureCache, approx_dbscan
from repro.errors import DataError
from repro.geometry import distance as dm
from repro.grid import counters
from repro.grid.hierarchy import CountingHierarchy, FlatHierarchy

DIMS = (2, 3, 4, 5)
RHOS = (0.001, 0.5, 1.0)
LEAF_SIZES = (0, 8)


def make_instance(d, n=220, seed=3):
    """A clustered-plus-noise instance with queries inside and outside."""
    rng = np.random.default_rng(seed + d)
    points = np.vstack([
        rng.normal(20.0, 3.0, size=(n // 2, d)),
        rng.normal(60.0, 5.0, size=(n // 3, d)),
        rng.uniform(0.0, 100.0, size=(n - n // 2 - n // 3, d)),
    ])
    queries = np.vstack([
        points[:: max(1, len(points) // 40)],
        rng.uniform(-30.0, 130.0, size=(25, d)),
    ])
    return points, queries


def brute_bounds(points, queries, eps, rho):
    """The Lemma 5 sandwich ``[count(eps), count(eps(1+rho))]`` per query."""
    sq = ((points[None, :, :] - queries[:, None, :]) ** 2).sum(axis=2)
    lo = (sq <= dm.sq_radius(eps)).sum(axis=1)
    hi = (sq <= (eps * (1.0 + rho)) ** 2).sum(axis=1)
    return lo, hi


# ------------------------------------------------------------ structure shape


@pytest.mark.parametrize("d", DIMS)
@pytest.mark.parametrize("rho", RHOS)
@pytest.mark.parametrize("leaf", LEAF_SIZES)
def test_same_node_set_as_reference(d, rho, leaf):
    points, _ = make_instance(d)
    eps = 12.0
    ref = CountingHierarchy(points, eps, rho, exact_leaf_size=leaf)
    flat = FlatHierarchy(points, eps, rho, exact_leaf_size=leaf)
    assert flat.n_levels == ref.n_levels
    assert flat.node_count() == ref.node_count()
    # Level 0 is the same cell set the reference keys its roots by.
    roots = {tuple(row) for row in flat._coords[0].tolist()}
    assert roots == set(ref._roots.keys())


def test_per_level_counts_match_point_total():
    points, _ = make_instance(3)
    flat = FlatHierarchy(points, 9.0, 0.25)
    # Every level partitions the points still being subdivided, so level 0
    # counts sum to n exactly.
    assert int(flat._counts[0].sum()) == len(points)
    # Each split node's children partition its points.
    for level in range(len(flat._child_n) ):
        cn = flat._child_n[level]
        split = cn > 0
        if not split.any() or level + 1 >= len(flat._counts):
            continue
        child_counts = flat._counts[level + 1]
        for node in np.nonzero(split)[0][:50]:
            off, k = flat._child_off[level][node], cn[node]
            assert int(child_counts[off:off + k].sum()) == int(flat._counts[level][node])


# ------------------------------------------------------------------ contracts


@pytest.mark.parametrize("d", DIMS)
@pytest.mark.parametrize("rho", RHOS)
@pytest.mark.parametrize("leaf", LEAF_SIZES)
def test_sandwich_and_exact_contract(d, rho, leaf):
    points, queries = make_instance(d)
    eps = 12.0
    ref = CountingHierarchy(points, eps, rho, exact_leaf_size=leaf)
    flat = FlatHierarchy(points, eps, rho, exact_leaf_size=leaf)
    got = flat.count_many(queries)
    any_got = flat.contains_any_many(queries)
    lo, hi = brute_bounds(points, queries, eps, rho)
    for i, q in enumerate(queries):
        # Sandwich bound against brute force, always.
        assert lo[i] <= got[i] <= hi[i]
        # Exact contract: where the sandwich collapses, flat == reference ==
        # brute (no don't-care freedom left).
        if lo[i] == hi[i]:
            assert got[i] == ref.count(q) == lo[i]
        # contains_any: definite yes / definite no must agree everywhere.
        if lo[i] > 0:
            assert any_got[i] and ref.contains_any(q)
        if hi[i] == 0:
            assert not any_got[i] and not ref.contains_any(q)


@pytest.mark.parametrize("d", (2, 4))
@pytest.mark.parametrize("rho", RHOS)
def test_batched_equals_looped(d, rho):
    points, queries = make_instance(d, seed=11)
    flat = FlatHierarchy(points, 10.0, rho)
    batched_counts = flat.count_many(queries)
    batched_any = flat.contains_any_many(queries)
    for i, q in enumerate(queries):
        assert flat.count(q) == batched_counts[i]
        assert flat.contains_any(q) == batched_any[i]
    assert flat.any_contains(queries) == bool(batched_any.any())


def test_any_contains_matches_per_query_or():
    points, _ = make_instance(3)
    flat = FlatHierarchy(points, 8.0, 0.001)
    rng = np.random.default_rng(0)
    hit = points[:3] + 0.5
    miss = rng.uniform(500.0, 600.0, size=(5, 3))
    assert flat.any_contains(np.vstack([miss, hit]))
    assert flat.any_contains(hit)
    assert not flat.any_contains(miss)


# ----------------------------------------------------------------- edge cases


def test_single_point():
    flat = FlatHierarchy(np.array([[5.0, 5.0]]), 2.0, 0.5)
    assert flat.count(np.array([5.0, 5.0])) == 1
    assert flat.count(np.array([50.0, 50.0])) == 0
    assert flat.contains_any(np.array([5.5, 5.0]))
    assert not flat.contains_any(np.array([50.0, 50.0]))


def test_empty_frontier_far_queries():
    points, _ = make_instance(3)
    flat = FlatHierarchy(points, 5.0, 0.001)
    far = np.full((7, 3), 1e6)
    assert (flat.count_many(far) == 0).all()
    assert not flat.contains_any_many(far).any()
    assert not flat.any_contains(far)


def test_zero_queries():
    points, _ = make_instance(2)
    flat = FlatHierarchy(points, 5.0, 0.5)
    assert flat.count_many(np.empty((0, 2))).shape == (0,)
    assert flat.contains_any_many(np.empty((0, 2))).shape == (0,)
    assert not flat.any_contains(np.empty((0, 2)))


def test_rejects_bad_inputs():
    with pytest.raises(DataError):
        FlatHierarchy(np.empty((0, 2)), 1.0, 0.5)
    flat = FlatHierarchy(np.array([[0.0, 0.0]]), 1.0, 0.5)
    with pytest.raises(DataError):
        flat.count_many(np.zeros((3, 5)))


def test_chunked_batches_match_small_batches():
    points, _ = make_instance(3, n=300, seed=5)
    flat = FlatHierarchy(points, 10.0, 0.5)
    rng = np.random.default_rng(2)
    queries = rng.uniform(-10.0, 110.0, size=(5000, 3))  # > _QUERY_CHUNK
    whole = flat.count_many(queries)
    parts = np.concatenate([
        flat.count_many(queries[i:i + 777]) for i in range(0, len(queries), 777)
    ])
    assert np.array_equal(whole, parts)


def test_pickle_roundtrip():
    import pickle

    points, queries = make_instance(3)
    flat = FlatHierarchy(points, 10.0, 0.001)
    clone = pickle.loads(pickle.dumps(flat))
    assert np.array_equal(clone.count_many(queries), flat.count_many(queries))
    assert clone.nbytes == flat.nbytes > 0


def test_nbytes_counts_all_levels():
    points, _ = make_instance(3)
    flat = FlatHierarchy(points, 10.0, 0.001)
    raw = sum(a.nbytes for lvl in (flat._coords, flat._counts) for a in lvl)
    assert flat.nbytes >= raw + flat.points.nbytes


# ------------------------------------------------------------------ properties


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    d=st.sampled_from(DIMS),
    rho=st.sampled_from(RHOS),
    leaf=st.sampled_from(LEAF_SIZES),
)
def test_property_sandwich_random(seed, d, rho, leaf):
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, 50.0, size=(rng.integers(1, 80), d))
    eps = float(rng.uniform(1.0, 20.0))
    flat = FlatHierarchy(points, eps, rho, exact_leaf_size=leaf)
    queries = np.vstack([points[:10], rng.uniform(-20.0, 70.0, size=(10, d))])
    got = flat.count_many(queries)
    lo, hi = brute_bounds(points, queries, eps, rho)
    assert ((lo <= got) & (got <= hi)).all()
    any_got = flat.contains_any_many(queries)
    assert not (any_got & (hi == 0)).any()
    assert ((lo > 0) <= any_got).all()


# ----------------------------------------------------- integration: pipeline


@pytest.fixture()
def blob_points():
    rng = np.random.default_rng(7)
    return np.vstack([
        rng.normal((100.0, 100.0), 8.0, size=(120, 2)),
        rng.normal((400.0, 120.0), 10.0, size=(140, 2)),
        rng.normal((250.0, 420.0), 12.0, size=(130, 2)),
        rng.uniform(0.0, 500.0, size=(60, 2)),
    ])


def test_parallel_run_matches_serial(blob_points):
    serial = approx_dbscan(blob_points, 30.0, 10, rho=0.01)
    parallel = approx_dbscan(blob_points, 30.0, 10, rho=0.01, workers=2)
    assert np.array_equal(serial.labels, parallel.labels)
    assert np.array_equal(serial.core_mask, parallel.core_mask)


def test_engine_cache_reuse_matches_one_shot(blob_points):
    engine = ClusteringEngine(blob_points, cache=StructureCache())
    cold = engine.approx_dbscan(30.0, 10, rho=0.01)
    warm = engine.approx_dbscan(30.0, 10, rho=0.01)
    fresh = approx_dbscan(blob_points, 30.0, 10, rho=0.01)
    assert np.array_equal(cold.labels, fresh.labels)
    assert np.array_equal(warm.labels, fresh.labels)
    assert np.array_equal(warm.core_mask, fresh.core_mask)


def test_kernel_counters_in_meta(blob_points):
    result = approx_dbscan(blob_points, 30.0, 10, rho=0.01)
    kc = result.meta.get("kernel_counters")
    assert kc, "approx runs must report kernel counters"
    # The staged edge kernel accounts for every candidate pair; Lemma 5
    # probes only run for pairs the vectorised stages could not settle,
    # so the lemma5_* counters may legitimately be absent here.
    assert kc["edge_pairs_total"] > 0
    settled = (
        kc.get("edge_quick_accept", 0)
        + kc.get("edge_quick_reject", 0)
        + kc.get("edge_survivors", 0)
        + kc.get("edge_connected_skip", 0)
    )
    assert settled == kc["edge_pairs_total"]
    assert kc.get("edge_survivors", 0) == (
        kc.get("edge_scheduled_skip", 0) + kc.get("edge_predicate_tests", 0)
    )
    if "lemma5_queries" in kc:
        assert kc["lemma5_frontier_pairs"] >= kc["lemma5_batches"]


def test_counters_registry_roundtrip():
    before = counters.snapshot()
    counters.add("test_counter_xyz", 3)
    counters.add("test_counter_xyz")
    delta = counters.delta_since(before)
    assert delta["test_counter_xyz"] == 4
