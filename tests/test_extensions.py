"""Tests for the extensions: stability profiling and fully-approximate DBSCAN."""

import numpy as np
import pytest

from repro.algorithms.brute import brute_dbscan
from repro.errors import ParameterError
from repro.evaluation.compare import sandwich_holds
from repro.extensions.approx_cores import approx_core_mask, approx_dbscan_full
from repro.extensions.stability import (
    Plateau,
    cluster_count_profile,
    plateaus,
    suggest_eps,
)

from .conftest import brute_neighbor_counts, make_blobs


class TestApproxCoreMask:
    def test_superset_of_exact_cores(self):
        pts = make_blobs(200, 3, 3, spread=1.0, domain=30.0, seed=0)
        eps, min_pts, rho = 2.0, 6, 0.2
        approx = approx_core_mask(pts, eps, min_pts, rho)
        exact = brute_neighbor_counts(pts, eps) >= min_pts
        assert (approx | ~exact).all()  # exact core => approx core

    def test_subset_of_inflated_cores(self):
        pts = make_blobs(200, 3, 3, spread=1.0, domain=30.0, seed=1)
        eps, min_pts, rho = 2.0, 6, 0.2
        approx = approx_core_mask(pts, eps, min_pts, rho)
        inflated = brute_neighbor_counts(pts, eps * (1 + rho)) >= min_pts
        assert (inflated | ~approx).all()  # approx core => inflated core

    def test_min_pts_one_all_core(self):
        pts = make_blobs(50, 2, 2, spread=1.0, domain=20.0, seed=2)
        assert approx_core_mask(pts, 1.0, 1, 0.01).all()


class TestApproxDBSCANFull:
    @pytest.mark.parametrize("rho", [0.01, 0.1, 0.5])
    def test_sandwich_still_holds(self, rho):
        pts = make_blobs(150, 2, 3, spread=1.2, domain=25.0, seed=3)
        eps, min_pts = 2.0, 5
        full = approx_dbscan_full(pts, eps, min_pts, rho=rho)
        exact = brute_dbscan(pts, eps, min_pts)
        inflated = brute_dbscan(pts, eps * (1 + rho), min_pts)
        assert sandwich_holds(exact, full, inflated)

    def test_small_rho_matches_exact_on_separated_data(self):
        rng = np.random.default_rng(4)
        pts = np.vstack([
            rng.normal(0, 0.5, size=(60, 3)),
            rng.normal(30, 0.5, size=(60, 3)),
        ])
        full = approx_dbscan_full(pts, 2.0, 5, rho=0.001)
        exact = brute_dbscan(pts, 2.0, 5)
        assert full.same_clusters(exact)

    def test_meta(self):
        res = approx_dbscan_full(np.zeros((5, 2)), 1.0, 2, rho=0.05)
        assert res.meta["algorithm"] == "approx_full"


class TestStability:
    def test_profile_shape(self):
        pts = make_blobs(100, 2, 2, spread=1.0, domain=25.0, seed=5)
        profile = cluster_count_profile(pts, 4, [1.0, 2.0, 3.0])
        assert len(profile) == 3
        assert all(isinstance(k, int) for _e, k in profile)

    def test_empty_sweep_rejected(self):
        with pytest.raises(ParameterError):
            cluster_count_profile(np.zeros((5, 2)), 2, [])

    def test_plateaus_merge_runs(self):
        profile = [(1.0, 3), (2.0, 3), (3.0, 2), (4.0, 2), (5.0, 1)]
        out = plateaus(profile)
        assert [(p.eps_lo, p.eps_hi, p.n_clusters) for p in out] == [
            (1.0, 2.0, 3),
            (3.0, 4.0, 2),
            (5.0, 5.0, 1),
        ]

    def test_plateau_relative_width(self):
        p = Plateau(2.0, 3.0, 4)
        assert p.relative_width == pytest.approx(0.5)
        assert p.midpoint == pytest.approx(2.5)

    def test_suggest_eps_finds_stable_range(self):
        rng = np.random.default_rng(6)
        pts = np.vstack([
            rng.normal(0, 0.5, size=(80, 2)),
            rng.normal(40, 0.5, size=(80, 2)),
        ])
        plateau = suggest_eps(pts, 5, np.linspace(1.0, 20.0, 12))
        assert plateau is not None
        assert plateau.n_clusters == 2
        # The suggested eps must indeed yield 2 clusters exactly.
        from repro.algorithms.exact_grid import exact_grid_dbscan

        assert exact_grid_dbscan(pts, plateau.midpoint, 5).n_clusters == 2

    def test_suggest_eps_none_when_everything_single(self):
        pts = np.random.default_rng(7).normal(0, 0.1, size=(50, 2))
        plateau = suggest_eps(pts, 3, [5.0, 10.0], min_clusters=2)
        assert plateau is None
