"""Tests for input validation and the parameter objects."""

import numpy as np
import pytest

from repro.core.params import ApproxParams, DBSCANParams
from repro.errors import DataError, ParameterError
from repro.utils.validation import as_points, check_eps, check_min_pts, check_rho


class TestAsPoints:
    def test_list_of_tuples(self):
        out = as_points([(1, 2), (3, 4)])
        assert out.shape == (2, 2)
        assert out.dtype == np.float64

    def test_1d_becomes_column(self):
        out = as_points([1.0, 2.0, 3.0])
        assert out.shape == (3, 1)

    def test_rejects_empty(self):
        with pytest.raises(DataError):
            as_points(np.empty((0, 3)))

    def test_rejects_zero_dims(self):
        with pytest.raises(DataError):
            as_points(np.empty((3, 0)))

    def test_rejects_nan(self):
        with pytest.raises(DataError):
            as_points([[1.0, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(DataError):
            as_points([[np.inf, 1.0]])

    def test_rejects_3d_array(self):
        with pytest.raises(DataError):
            as_points(np.zeros((2, 2, 2)))

    def test_no_copy_by_default(self):
        arr = np.zeros((3, 2), dtype=np.float64)
        assert as_points(arr) is arr

    def test_copy_when_requested(self):
        arr = np.zeros((3, 2), dtype=np.float64)
        assert as_points(arr, copy=True) is not arr

    def test_int_input_converted(self):
        out = as_points(np.array([[1, 2], [3, 4]]))
        assert out.dtype == np.float64


class TestScalarChecks:
    @pytest.mark.parametrize("bad", [0.0, -1.0, np.nan, np.inf])
    def test_eps_rejects(self, bad):
        with pytest.raises(ParameterError):
            check_eps(bad)

    def test_eps_accepts(self):
        assert check_eps(2) == 2.0

    @pytest.mark.parametrize("bad", [0, -3, 2.5])
    def test_min_pts_rejects(self, bad):
        with pytest.raises(ParameterError):
            check_min_pts(bad)

    def test_min_pts_accepts_integral_float(self):
        assert check_min_pts(4.0) == 4

    @pytest.mark.parametrize("bad", [0.0, -0.1, np.nan])
    def test_rho_rejects(self, bad):
        with pytest.raises(ParameterError):
            check_rho(bad)

    def test_rho_accepts(self):
        assert check_rho(0.001) == 0.001


class TestDBSCANParams:
    def test_valid(self):
        p = DBSCANParams(1.5, 10)
        assert p.eps == 1.5 and p.min_pts == 10

    def test_invalid_eps(self):
        with pytest.raises(ParameterError):
            DBSCANParams(-1.0, 10)

    def test_invalid_min_pts(self):
        with pytest.raises(ParameterError):
            DBSCANParams(1.0, 0)

    def test_frozen(self):
        p = DBSCANParams(1.0, 5)
        with pytest.raises(AttributeError):
            p.eps = 2.0

    def test_inflated(self):
        p = DBSCANParams(10.0, 5).inflated(0.1)
        assert p.eps == pytest.approx(11.0)
        assert p.min_pts == 5


class TestApproxParams:
    def test_valid(self):
        p = ApproxParams(1.0, 5, 0.01)
        assert p.rho == 0.01

    def test_invalid_rho(self):
        with pytest.raises(ParameterError):
            ApproxParams(1.0, 5, 0.0)

    def test_exact_slices(self):
        p = ApproxParams(10.0, 5, 0.5)
        assert p.exact == DBSCANParams(10.0, 5)
        assert p.exact_inflated == DBSCANParams(15.0, 5)
