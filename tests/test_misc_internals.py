"""Coverage for smaller internals: timing helpers, BCP auto strategy,
hierarchy root enumeration, rng plumbing."""

import numpy as np
import pytest

from repro.evaluation.timing import TimedRun, geometric_growth
import importlib

# The package re-exports the bcp *function* under the same name as the
# module, so resolve the module explicitly.
bcp_mod = importlib.import_module("repro.geometry.bcp")
from repro.grid.hierarchy import CountingHierarchy
from repro.utils.rng import make_rng, spawn


class TestGeometricGrowth:
    def test_ratios(self):
        assert geometric_growth([1.0, 2.0, 8.0]) == [2.0, 4.0]

    def test_skips_zero_base(self):
        assert geometric_growth([0.0, 2.0, 4.0]) == [2.0]

    def test_empty(self):
        assert geometric_growth([]) == []
        assert geometric_growth([5.0]) == []


class TestTimedRun:
    def test_extra_dict_default(self):
        run = TimedRun("x", 1.0)
        run.extra["note"] = "hi"
        assert TimedRun("y", 1.0).extra == {}


class TestBCPAutoStrategy:
    def test_small_inputs_use_brute(self):
        a = np.zeros((10, 2))
        b = np.zeros((10, 2))
        assert bcp_mod._pick_strategy(a, b) == "brute"

    def test_large_inputs_use_kdtree(self):
        a = np.zeros((1000, 2))
        b = np.zeros((1000, 2))
        assert bcp_mod._pick_strategy(a, b) == "kdtree"

    def test_auto_gives_correct_answer_both_regimes(self):
        rng = np.random.default_rng(0)
        for n in (20, 600):
            a = rng.uniform(0, 100, size=(n, 2))
            b = rng.uniform(0, 100, size=(n, 2))
            sq = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
            expected = np.sqrt(sq.min())
            assert bcp_mod.bcp(a, b).distance == pytest.approx(expected)


class TestHierarchyRootEnumeration:
    def test_enumeration_path_small_structure(self):
        # One root cell: queries must fall through to the stored-roots scan
        # (the per-core-cell configuration of the approx algorithm).
        pts = np.random.default_rng(1).uniform(0, 0.5, size=(50, 2))
        structure = CountingHierarchy(pts, 1.0, 0.01)
        assert len(structure._roots) <= 4
        assert structure.count(np.array([0.25, 0.25])) == 50

    def test_scan_path_many_roots(self):
        # Many roots spread over a wide domain: the coordinate-box
        # enumeration around q engages instead.
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 1000, size=(400, 2))
        structure = CountingHierarchy(pts, 5.0, 0.01)
        assert len(structure._roots) > 100
        q = pts[0]
        ans = structure.count(q)
        sq = ((pts - q) ** 2).sum(axis=1)
        lo = int((sq <= 25.0).sum())
        hi = int((sq <= (5.0 * 1.01) ** 2).sum())
        assert lo <= ans <= hi

    def test_query_far_outside_domain(self):
        pts = np.random.default_rng(3).uniform(0, 10, size=(60, 3))
        structure = CountingHierarchy(pts, 2.0, 0.05)
        assert structure.count(np.array([1e6, 1e6, 1e6])) == 0


class TestRNG:
    def test_make_rng_from_int(self):
        a = make_rng(7)
        b = make_rng(7)
        assert a.integers(0, 100) == b.integers(0, 100)

    def test_make_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_make_rng_none(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_spawn_children_independent(self):
        rng = make_rng(5)
        kids = spawn(rng, 3)
        assert len(kids) == 3
        draws = [k.integers(0, 1_000_000) for k in kids]
        assert len(set(draws)) == 3
