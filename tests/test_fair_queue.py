"""Tests for weighted fair queueing, deadline scheduling, and metrics.

The fairness bar from the tentpole spec:

* a tenant bursting far more work than its weight justifies cannot
  starve a light tenant: completed shares converge to the weight ratio
  (the oracle tolerates 2x of the configured share);
* within one tenant, higher priority runs first and earliest deadline
  breaks ties, so a feasible soon-to-expire request never loses its slot
  to lazier work;
* hopeless requests (deadline already expired) are shed immediately with
  a structured verdict, at enqueue or at pop, never silently dropped;
* per-tenant quotas bound queued and in-flight work with typed errors.
"""

import asyncio
import random

import numpy as np
import pytest

from repro.errors import ServiceOverloadError
from repro.runtime.deadline import Deadline
from repro.service import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionPolicy as _AP,  # noqa: F401 - re-exported surface check
    FairScheduler,
    render_metrics,
)


def run(coro):
    return asyncio.run(coro)


def make_sched(slots=1, config=None):
    return FairScheduler(slots, config=config)


async def drive(sched, arrivals, *, hold=0):
    """Enqueue ``arrivals`` = [(tenant, priority, deadline)] concurrently,
    record the order slots are granted, release each immediately."""
    order = []

    async def one(tenant, priority, deadline):
        await sched.acquire(tenant, deadline, priority)
        order.append(tenant)
        if hold:
            await asyncio.sleep(hold)
        sched.release(tenant)

    results = await asyncio.gather(
        *(one(*a) for a in arrivals), return_exceptions=True
    )
    return order, results


class TestFairScheduler:
    def test_single_tenant_all_complete(self):
        sched = make_sched(slots=2)
        order, results = run(drive(sched, [("t", 0, None)] * 10))
        assert len(order) == 10
        assert not any(isinstance(r, Exception) for r in results)

    def test_weighted_share_within_oracle_bound(self):
        # The acceptance oracle: a 16:1 weight split under a saturating
        # burst from both tenants.  The minority tenant's completed share
        # must be within 2x of its configured share.
        weights = {"heavy": 16.0, "light": 1.0}
        sched = make_sched(
            slots=1, config=lambda t: (weights[t], None, None)
        )
        N = 68  # 4 full DRR cycles of 17

        async def scenario():
            order = []
            done = asyncio.Event()

            async def one(tenant):
                await sched.acquire(tenant, None, 0)
                order.append(tenant)
                # Hold the slot across a yield: without it a granted
                # future resolves synchronously and the burst never
                # actually contends.
                await asyncio.sleep(0)
                sched.release(tenant)
                if len(order) >= N:
                    done.set()

            # Saturate: every request of both tenants is queued up front.
            tasks = [asyncio.ensure_future(one("heavy")) for _ in range(N)]
            tasks += [asyncio.ensure_future(one("light")) for _ in range(N)]
            await asyncio.sleep(0)  # let them all enqueue
            await asyncio.wait_for(done.wait(), 10)
            completed = order[:N]
            for t in tasks:
                t.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            return completed

        completed = run(scenario())
        light_share = completed.count("light") / len(completed)
        configured = 1.0 / 17.0
        assert light_share >= configured / 2.0
        # And the heavy tenant still gets the lion's share.
        assert completed.count("heavy") > completed.count("light")

    def test_interleaving_not_fifo(self):
        # FIFO would run all 6 of tenant a's burst, then b's one request.
        # DRR at equal weights alternates.
        sched = make_sched(slots=1)

        async def scenario():
            order = []

            async def one(tenant):
                await sched.acquire(tenant, None, 0)
                order.append(tenant)
                await asyncio.sleep(0)
                sched.release(tenant)

            burst = [asyncio.ensure_future(one("a")) for _ in range(6)]
            await asyncio.sleep(0)
            tail = asyncio.ensure_future(one("b"))
            await asyncio.gather(*burst, tail)
            return order

        order = run(scenario())
        # b arrived after a's whole burst but runs long before it drains.
        assert order.index("b") <= 2

    def test_priority_orders_within_tenant(self):
        sched = make_sched(slots=1)

        async def scenario():
            order = []

            async def one(label, priority):
                await sched.acquire("t", None, priority)
                order.append(label)
                sched.release("t")

            # Hold the only slot so the rest queue, then release it.
            await sched.acquire("t", None, 0)
            tasks = [
                asyncio.ensure_future(one("low", 0)),
                asyncio.ensure_future(one("high", 5)),
                asyncio.ensure_future(one("mid", 2)),
            ]
            await asyncio.sleep(0)
            sched.release("t")
            await asyncio.gather(*tasks)
            return order

        assert run(scenario()) == ["high", "mid", "low"]

    def test_earliest_deadline_first_within_priority(self):
        sched = make_sched(slots=1)

        async def scenario():
            order = []

            async def one(label, deadline):
                await sched.acquire("t", deadline, 0)
                order.append(label)
                sched.release("t")

            await sched.acquire("t", None, 0)
            tasks = [
                asyncio.ensure_future(one("late", Deadline(60.0))),
                asyncio.ensure_future(one("soon", Deadline(5.0))),
                asyncio.ensure_future(one("never", None)),
            ]
            await asyncio.sleep(0)
            sched.release("t")
            await asyncio.gather(*tasks)
            return order

        assert run(scenario()) == ["soon", "late", "never"]

    def test_expired_deadline_shed_at_enqueue(self):
        sched = make_sched(slots=1)

        async def scenario():
            dead = Deadline(1e-9)
            await asyncio.sleep(0.01)
            with pytest.raises(ServiceOverloadError) as err:
                await sched.acquire("t", dead, 0)
            return err.value

        exc = run(scenario())
        assert exc.reason == "deadline-expired"
        assert sched.snapshot()["t"]["shed"] == 1

    def test_expired_while_queued_shed_at_pop(self):
        sched = make_sched(slots=1)

        async def scenario():
            await sched.acquire("t", None, 0)  # hold the slot
            waiter = asyncio.ensure_future(
                sched.acquire("t", Deadline(0.02), 0)
            )
            await asyncio.sleep(0.08)  # let the deadline lapse queued
            sched.release("t")
            with pytest.raises(ServiceOverloadError) as err:
                await waiter
            return err.value

        exc = run(scenario())
        assert exc.reason == "deadline-expired"
        assert sched.snapshot()["t"]["expired"] == 1

    def test_feasible_deadline_never_expires_behind_lower_priority(self):
        # The oracle's scheduling clause: while a feasible-deadline
        # request waits, lower-priority work of the same tenant must not
        # overtake it and burn its time.
        sched = make_sched(slots=1)

        async def scenario():
            order = []

            async def one(label, priority, deadline):
                await sched.acquire("t", deadline, priority)
                order.append(label)
                await asyncio.sleep(0.01)
                sched.release("t")

            await sched.acquire("t", None, 0)
            urgent = asyncio.ensure_future(one("urgent", 1, Deadline(0.5)))
            lazy = [
                asyncio.ensure_future(one(f"lazy{i}", 0, None))
                for i in range(5)
            ]
            await asyncio.sleep(0)
            sched.release("t")
            await asyncio.gather(urgent, *lazy)
            return order

        order = run(scenario())
        assert order[0] == "urgent"

    def test_tenant_queue_quota_sheds_with_retry_after(self):
        sched = make_sched(slots=1, config=lambda t: (1.0, 2, None))

        async def scenario():
            await sched.acquire("t", None, 0)  # hold the slot
            queued = [
                asyncio.ensure_future(sched.acquire("t", None, 0))
                for _ in range(2)
            ]
            await asyncio.sleep(0)
            with pytest.raises(ServiceOverloadError) as err:
                await sched.acquire("t", None, 0)
            for task in queued:
                task.cancel()
            sched.release("t")
            await asyncio.gather(*queued, return_exceptions=True)
            return err.value

        exc = run(scenario())
        assert exc.reason == "tenant-queue-full"
        assert exc.retry_after is not None and exc.retry_after > 0

    def test_tenant_max_inflight_respected(self):
        sched = make_sched(slots=4, config=lambda t: (1.0, None, 1))

        async def scenario():
            peak = 0

            async def one():
                nonlocal peak
                await sched.acquire("t", None, 0)
                peak = max(peak, sched.snapshot()["t"]["inflight"])
                await asyncio.sleep(0.01)
                sched.release("t")

            await asyncio.gather(*(one() for _ in range(6)))
            return peak

        # Four slots free, but the tenant may only ever hold one.
        assert run(scenario()) == 1

    def test_no_starvation_randomized(self):
        # Property: whatever the (seeded) arrival pattern and weights,
        # every request either completes or is shed with a verdict —
        # nobody waits forever.
        rng = random.Random(1234)
        weights = {"a": 0.3, "b": 1.0, "c": 7.0}
        sched = make_sched(
            slots=2, config=lambda t: (weights[t], None, None)
        )

        async def scenario():
            outcomes = []

            async def one(tenant):
                try:
                    await sched.acquire(tenant, None, 0)
                except ServiceOverloadError:
                    outcomes.append("shed")
                    return
                await asyncio.sleep(rng.random() * 0.002)
                sched.release(tenant)
                outcomes.append("done")

            tasks = []
            for _ in range(120):
                tenant = rng.choice("abc")
                tasks.append(asyncio.ensure_future(one(tenant)))
                if rng.random() < 0.3:
                    await asyncio.sleep(0.001)
            await asyncio.wait_for(asyncio.gather(*tasks), 30)
            return outcomes

        outcomes = run(scenario())
        assert len(outcomes) == 120
        assert outcomes.count("done") == 120  # no quotas: all complete
        snap = sched.snapshot()
        assert sum(s["dispatched"] for s in snap.values()) == 120
        assert all(s["queued"] == 0 and s["inflight"] == 0 for s in snap.values())


# ------------------------------------------------------ per-tenant admission


class TestTenantAdmission:
    def test_tenant_quota_sheds_before_global(self):
        ctrl = AdmissionController(AdmissionPolicy(max_queue=10, tenant_max_queue=2))
        ctrl.admit(tenant="a")
        ctrl.admit(tenant="a")
        with pytest.raises(ServiceOverloadError) as err:
            ctrl.admit(tenant="a")
        assert err.value.reason == "tenant-quota"
        ctrl.admit(tenant="b")  # other tenants unaffected
        assert ctrl.tenant_depth("a") == 2
        assert ctrl.tenant_depth("b") == 1
        ctrl.release("a")
        ctrl.admit(tenant="a")  # released capacity is usable again

    def test_explicit_quota_overrides_policy_default(self):
        ctrl = AdmissionController(AdmissionPolicy(max_queue=10, tenant_max_queue=1))
        ctrl.admit(tenant="a", tenant_quota=3)
        ctrl.admit(tenant="a", tenant_quota=3)
        ctrl.admit(tenant="a", tenant_quota=3)
        with pytest.raises(ServiceOverloadError):
            ctrl.admit(tenant="a", tenant_quota=3)

    def test_draining_refuses_everything(self):
        ctrl = AdmissionController(AdmissionPolicy(max_queue=10, drain_timeout=7.0))
        ctrl.admit(tenant="a")
        ctrl.start_draining()
        with pytest.raises(ServiceOverloadError) as err:
            ctrl.admit(tenant="b")
        assert err.value.reason == "draining"
        assert err.value.retry_after == 7.0
        ctrl.release("a")  # in-flight work still drains out

    def test_policy_validation(self):
        with pytest.raises(Exception):
            AdmissionPolicy(tenant_max_queue=0)
        with pytest.raises(Exception):
            AdmissionPolicy(tenant_max_inflight=0)
        with pytest.raises(Exception):
            AdmissionPolicy(drain_timeout=-1.0)


# ------------------------------------------------------------------ metrics


class TestMetricsRender:
    def stats(self):
        return {
            "uptime": 12.5,
            "queue_depth": 3,
            "queue_limit": 32,
            "in_flight": 2,
            "draining": False,
            "datasets": 4,
            "accepted": 100,
            "rejected": 5,
            "expired": 1,
            "coalesced": 40,
            "executed": 59,
            "degraded": 2,
            "failed": 0,
            "retries": 1,
            "quarantined": 0,
            "tiers": {"exact": 50, "approx": 9},
            "tenants": {
                "alice": {"weight": 16.0, "queued": 1, "inflight": 1,
                          "dispatched": 50, "shed": 2, "expired": 0},
            },
            "breakers": {"blobs": {"open": True, "failures": 3,
                                   "retry_after": 12.0}},
        }

    def test_prometheus_text_shape(self):
        body = render_metrics(self.stats())
        lines = body.splitlines()
        assert 'repro_service_requests_total{outcome="accepted"} 100' in lines
        assert 'repro_service_tenant_weight{tenant="alice"} 16' in lines
        assert 'repro_service_tenant_dispatched_total{tenant="alice"} 50' in lines
        assert 'repro_service_tier_executions_total{tier="exact"} 50' in lines
        assert 'repro_service_breaker_open{dataset="blobs"} 1' in lines
        assert "repro_service_draining 0" in lines
        # Every metric family is announced with HELP + TYPE.
        helped = {l.split()[2] for l in lines if l.startswith("# HELP")}
        typed = {l.split()[2] for l in lines if l.startswith("# TYPE")}
        assert helped == typed
        for line in lines:
            if not line.startswith("#"):
                name = line.split("{")[0].split(" ")[0]
                assert name in helped

    def test_label_escaping(self):
        stats = self.stats()
        stats["tenants"] = {'we"ird\\t\nenant': {"weight": 1.0}}
        body = render_metrics(stats)
        assert '\\"' in body and "\\\\" in body and "\\n" in body
