"""Tests for the core-point labeling process (Section 2.2)."""

import numpy as np
import pytest

from repro.core.labeling import label_cores, neighbor_counts
from repro.errors import AlgorithmError
from repro.grid.cells import Grid

from .conftest import brute_neighbor_counts, make_blobs


class TestLabelCores:
    def test_matches_brute_definition(self):
        pts = make_blobs(300, 2, 3, spread=1.0, domain=50.0, seed=0)
        eps, min_pts = 2.0, 8
        grid = Grid(pts, eps)
        core = label_cores(grid, min_pts)
        expected = brute_neighbor_counts(pts, eps) >= min_pts
        assert (core == expected).all()

    @pytest.mark.parametrize("d", [1, 2, 3, 4, 5])
    def test_dimensions(self, d):
        rng = np.random.default_rng(d)
        pts = rng.uniform(0, 30, size=(200, d))
        eps, min_pts = 4.0, 5
        grid = Grid(pts, eps)
        core = label_cores(grid, min_pts)
        expected = brute_neighbor_counts(pts, eps) >= min_pts
        assert (core == expected).all()

    def test_dense_cell_shortcut(self):
        # A cell with >= MinPts points: all must be core without distance work.
        pts = np.vstack([np.full((20, 2), 5.0), [[100.0, 100.0]]])
        grid = Grid(pts, eps=3.0)
        core = label_cores(grid, min_pts=10)
        assert core[:20].all()
        assert not core[20]

    def test_min_pts_one_makes_everything_core(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 100, size=(50, 3))
        grid = Grid(pts, eps=0.5)
        assert label_cores(grid, 1).all()

    def test_min_pts_larger_than_n(self):
        pts = np.random.default_rng(2).uniform(0, 10, size=(5, 2))
        grid = Grid(pts, eps=100.0)
        assert not label_cores(grid, 6).any()

    def test_boundary_distance_counts(self):
        # Two points exactly eps apart count each other.
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        grid = Grid(pts, eps=1.0)
        assert label_cores(grid, 2).all()

    def test_wrong_side_rejected(self):
        pts = np.zeros((3, 2))
        grid = Grid(pts, eps=1.0, side=5.0)
        with pytest.raises(AlgorithmError):
            label_cores(grid, 2)

    def test_early_termination_consistent(self):
        # Early termination must not change the outcome versus full counts.
        pts = make_blobs(400, 3, 2, spread=0.8, domain=30.0, seed=3)
        eps, min_pts = 2.5, 12
        grid = Grid(pts, eps)
        core = label_cores(grid, min_pts)
        counts = neighbor_counts(grid)
        assert (core == (counts >= min_pts)).all()


class TestNeighborCounts:
    def test_matches_brute(self):
        pts = make_blobs(250, 2, 2, spread=1.0, domain=40.0, seed=4)
        grid = Grid(pts, eps=3.0)
        assert (neighbor_counts(grid) == brute_neighbor_counts(pts, 3.0)).all()

    def test_counts_include_self(self):
        pts = np.array([[0.0, 0.0], [50.0, 50.0]])
        grid = Grid(pts, eps=1.0)
        assert neighbor_counts(grid).tolist() == [1, 1]

    def test_cap(self):
        pts = np.zeros((10, 2))
        grid = Grid(pts, eps=1.0)
        assert (neighbor_counts(grid, cap=4) == 4).all()

    def test_duplicates_all_counted(self):
        pts = np.vstack([np.zeros((7, 2)), [[0.5, 0.0]]])
        grid = Grid(pts, eps=1.0)
        assert (neighbor_counts(grid) == 8).all()
