"""Fault injection through the service path.

PR 3 proved the supervisor recovers from killed / hung / poisoned workers
when driven directly; these tests drive the same faults through the
*service* front door and hold it to the service's contract: the request
either answers byte-identically to the serial oracle (recovery worked
underneath) or fails with a structured error — and coalesced waiters
always share that fate, never hang.
"""

import threading
import time

import numpy as np
import pytest

from repro.api import dbscan
from repro.errors import (
    DatasetQuarantinedError,
    ServiceError,
    ServiceOverloadError,
    WorkerPoolError,
)
from repro.parallel import ParallelConfig
from repro.runtime.faultinject import inject_faults
from repro.service import AdmissionPolicy, ServiceClient

EPS = 5.0
MIN_PTS = 4


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(7)
    return rng.uniform(0.0, 100.0, size=(400, 2))


@pytest.fixture(scope="module")
def serial(points):
    return dbscan(points, EPS, MIN_PTS, algorithm="grid")


@pytest.fixture()
def client(points):
    with ServiceClient(policy=AdmissionPolicy(max_queue=16)) as c:
        c.register("blobs", points)
        yield c


def cfg(**overrides):
    defaults = dict(workers=2, min_points=0, shard_timeout=5.0)
    defaults.update(overrides)
    return ParallelConfig(**defaults)


def assert_identical(serial_result, recovered, name):
    assert np.array_equal(serial_result.labels, recovered.labels), name
    assert np.array_equal(serial_result.core_mask, recovered.core_mask), name


class TestWorkerFaultsThroughService:
    def test_killed_worker_recovers_and_answers_identically(
        self, client, points, serial
    ):
        with inject_faults(kill_shards=[("cores", 0)]) as plan:
            result = client.cluster(
                "blobs", EPS, MIN_PTS, workers=cfg(), timeout=180
            )
            # (counted inside the block: the token dir dies with it)
            assert plan.worker_faults_fired("kill") == 1
        assert_identical(serial, result, "kill")
        stats = client.stats()
        assert stats["executed"] == 1 and stats["failed"] == 0
        assert stats["quarantined"] == 0  # recovery is not a breaker event

    def test_hung_worker_times_out_and_answers_identically(
        self, client, serial
    ):
        with inject_faults(
            hang_shards=[("borders", 0)], hang_seconds=30.0
        ) as plan:
            result = client.cluster(
                "blobs", EPS, MIN_PTS,
                workers=cfg(shard_timeout=1.0), timeout=180,
            )
            assert plan.worker_faults_fired("hang") == 1
        assert_identical(serial, result, "hang")

    def test_poisoned_shard_quarantined_and_answers_identically(
        self, client, serial
    ):
        with inject_faults(poison_shards=[("cores", 1)]):
            result = client.cluster(
                "blobs", EPS, MIN_PTS, workers=cfg(), timeout=180
            )
        assert_identical(serial, result, "poison")
        assert client.stats()["failed"] == 0


class TestHardFailuresAndBreaker:
    def test_pool_failure_retried_then_surfaced(self, points):
        policy = AdmissionPolicy(retry_attempts=2, breaker_threshold=10)
        with ServiceClient(policy=policy) as client:
            client.register("blobs", points)
            calls = []

            def execute(entry, job):
                calls.append(job["eps"])
                raise WorkerPoolError("injected: pool keeps dying")

            client.service._execute = execute
            with pytest.raises(WorkerPoolError):
                client.cluster("blobs", EPS, MIN_PTS, timeout=60)
            # One request = retry_attempts executions of the job.
            assert len(calls) == 2
            stats = client.stats()
            assert stats["failed"] == 1
            assert stats["retries"] == 1

    def test_breaker_opens_after_repeated_hard_failures(self, points):
        policy = AdmissionPolicy(
            retry_attempts=1, breaker_threshold=2, breaker_cooldown=60.0
        )
        with ServiceClient(policy=policy) as client:
            client.register("blobs", points)

            def execute(entry, job):
                raise RuntimeError("injected: infrastructure on fire")

            client.service._execute = execute
            for i in range(2):
                with pytest.raises(RuntimeError):
                    client.cluster("blobs", EPS + i, MIN_PTS, timeout=60)
            # Third request never reaches execution: quarantined.
            with pytest.raises(DatasetQuarantinedError) as err:
                client.cluster("blobs", EPS, MIN_PTS, timeout=60)
            assert err.value.failures == 2
            assert err.value.retry_after > 0
            # ``quarantined`` counts every refused request, not the
            # one-time breaker-opening event.
            with pytest.raises(DatasetQuarantinedError):
                client.cluster("blobs", EPS + 9, MIN_PTS, timeout=60)
            stats = client.stats()
            assert stats["quarantined"] == 2
            assert stats["executed"] == 0
            # Quarantine happens before admission: accepted/rejected
            # cover only the two requests that reached the engine.
            assert stats["accepted"] == 2 and stats["rejected"] == 0

    def test_breaker_half_open_probe_restores_service(self, points, serial):
        policy = AdmissionPolicy(
            retry_attempts=1, breaker_threshold=1, breaker_cooldown=0.05
        )
        with ServiceClient(policy=policy) as client:
            client.register("blobs", points)
            real = client.service._execute

            def execute(entry, job):
                raise RuntimeError("injected: transient outage")

            client.service._execute = execute
            with pytest.raises(RuntimeError):
                client.cluster("blobs", EPS, MIN_PTS, timeout=60)
            with pytest.raises(DatasetQuarantinedError):
                client.cluster("blobs", EPS, MIN_PTS, timeout=60)
            # Outage ends; after the cooldown the half-open probe passes
            # and its success closes the breaker for everyone.
            client.service._execute = real
            time.sleep(0.06)
            result = client.cluster("blobs", EPS, MIN_PTS, timeout=180)
            assert_identical(serial, result, "post-probe")
            assert client.service.breaker.snapshot() == {}

    def test_shed_probe_does_not_wedge_the_breaker(self, points, serial):
        # Regression: the half-open probe flag leaked when the probe
        # request exited without an infrastructure verdict — here, shed
        # by admission because its deadline was already expired.  The
        # probing flag then stayed True forever and every later request
        # raised DatasetQuarantinedError with no recovery path.
        policy = AdmissionPolicy(
            retry_attempts=1, breaker_threshold=1, breaker_cooldown=0.05
        )
        with ServiceClient(policy=policy) as client:
            client.register("blobs", points)
            real = client.service._execute

            def execute(entry, job):
                raise RuntimeError("injected: transient outage")

            client.service._execute = execute
            with pytest.raises(RuntimeError):
                client.cluster("blobs", EPS, MIN_PTS, timeout=60)
            client.service._execute = real
            time.sleep(0.06)
            # The probe request is shed before it reaches the engine.
            with pytest.raises(ServiceOverloadError):
                client.cluster(
                    "blobs", EPS, MIN_PTS, time_budget=1e-9, timeout=60
                )
            # The slot was released: the next request probes, succeeds,
            # and closes the breaker for everyone.
            result = client.cluster("blobs", EPS, MIN_PTS, timeout=180)
            assert_identical(serial, result, "post-aborted-probe")
            assert client.service.breaker.snapshot() == {}

    def test_budget_failures_do_not_trip_breaker(self, points):
        from repro.errors import TimeoutExceeded

        policy = AdmissionPolicy(retry_attempts=1, breaker_threshold=1)
        with ServiceClient(policy=policy) as client:
            client.register("blobs", points)

            def execute(entry, job):
                raise TimeoutExceeded(2.0, 1.0)

            client.service._execute = execute
            for _ in range(3):
                with pytest.raises(TimeoutExceeded):
                    client.cluster("blobs", EPS, MIN_PTS, timeout=60)
            assert client.service.breaker.snapshot() == {}
            assert client.stats()["quarantined"] == 0


class TestCoalescedWaitersUnderFailure:
    def test_waiters_share_the_leaders_structured_error(self, points):
        policy = AdmissionPolicy(max_queue=16, retry_attempts=1,
                                 breaker_threshold=10)
        with ServiceClient(policy=policy) as client:
            client.register("blobs", points)
            release = threading.Event()
            started = threading.Event()

            def execute(entry, job):
                started.set()
                assert release.wait(timeout=60)
                raise WorkerPoolError("injected: pool lost mid-request")

            client.service._execute = execute
            leader = client.submit(
                client.service.cluster("blobs", EPS, MIN_PTS)
            )
            started.wait(timeout=30)
            waiters = [
                client.submit(client.service.cluster("blobs", EPS, MIN_PTS))
                for _ in range(4)
            ]
            release.set()
            # Nobody hangs: every request fails promptly with the same
            # structured error class the leader saw.
            for fut in [leader] + waiters:
                with pytest.raises(WorkerPoolError):
                    fut.result(timeout=30)
            stats = client.stats()
            assert stats["coalesced"] == 4
            assert stats["failed"] == 1  # one execution, one failure
            assert client.service.admission.depth == 0
            assert client.service.flights.in_flight() == 0

    def test_waiters_share_the_leaders_result_bytes(self, client, points):
        release = threading.Event()
        started = threading.Event()
        real = client.service._execute

        def execute(entry, job):
            started.set()
            assert release.wait(timeout=60)
            return real(entry, job)

        client.service._execute = execute
        leader = client.submit(client.service.cluster("blobs", EPS, MIN_PTS))
        started.wait(timeout=30)
        waiters = [
            client.submit(client.service.cluster("blobs", EPS, MIN_PTS))
            for _ in range(4)
        ]
        release.set()
        responses = [f.result(timeout=120) for f in [leader] + waiters]
        blob = None
        for response in responses:
            labels = response["clustering"]["clusters"]
            blob = labels if blob is None else blob
            assert labels == blob
        assert client.service.registry.get("blobs").engine.runs_executed == 1

    def test_service_errors_are_one_family(self):
        # The CLI maps the whole family to exit code 7; the wire maps it
        # to structured codes.  Both rely on the shared base class.
        assert issubclass(DatasetQuarantinedError, ServiceError)
