"""Tests for border assignment and the core-cell graph builders."""

import numpy as np
import pytest

from repro.core.border import assign_borders
from repro.core.cellgraph import (
    approx_components,
    core_cells,
    edge_list_exact,
    exact_components,
)
from repro.core.labeling import label_cores
from repro.grid.cells import Grid

from .conftest import make_blobs


def setup_grid(pts, eps, min_pts):
    grid = Grid(pts, eps)
    core_mask = label_cores(grid, min_pts)
    return grid, core_mask


class TestCoreCells:
    def test_only_cells_with_core_points(self):
        pts = np.vstack([np.zeros((10, 2)), [[50.0, 50.0]]])
        grid, core_mask = setup_grid(pts, eps=2.0, min_pts=5)
        cells = core_cells(grid, core_mask)
        assert len(cells) == 1
        (idx,) = cells.values()
        assert sorted(idx.tolist()) == list(range(10))

    def test_empty_when_no_cores(self):
        pts = np.array([[0.0, 0.0], [50.0, 50.0]])
        grid, core_mask = setup_grid(pts, eps=1.0, min_pts=3)
        assert core_cells(grid, core_mask) == {}


class TestExactComponents:
    def test_two_separate_blobs_two_components(self):
        rng = np.random.default_rng(0)
        pts = np.vstack([
            rng.normal(0, 0.5, size=(40, 2)),
            rng.normal(30, 0.5, size=(40, 2)),
        ])
        grid, core_mask = setup_grid(pts, eps=2.0, min_pts=5)
        labels, k = exact_components(grid, core_mask)
        assert k == 2
        assert labels[0] != labels[50]

    def test_bridge_merges_components(self):
        # A chain of points within eps of each other must form one component.
        pts = np.array([[float(i) * 0.9, 0.0] for i in range(30)])
        grid, core_mask = setup_grid(pts, eps=1.0, min_pts=2)
        assert core_mask.all()
        _labels, k = exact_components(grid, core_mask)
        assert k == 1

    def test_noncore_positions_get_minus_one(self):
        pts = np.vstack([np.zeros((5, 2)), [[50.0, 50.0]]])
        grid, core_mask = setup_grid(pts, eps=1.0, min_pts=3)
        labels, _k = exact_components(grid, core_mask)
        assert labels[5] == -1

    @pytest.mark.parametrize("strategy", ["brute", "kdtree"])
    def test_strategies_agree(self, strategy):
        pts = make_blobs(200, 3, 3, spread=1.0, domain=40.0, seed=1)
        grid, core_mask = setup_grid(pts, eps=2.5, min_pts=5)
        labels_a, ka = exact_components(grid, core_mask)
        labels_b, kb = exact_components(grid, core_mask, bcp_strategy=strategy)
        assert ka == kb
        # Same partition (labels may be permuted).
        core_idx = np.nonzero(core_mask)[0]
        mapping = {}
        for i in core_idx:
            mapping.setdefault(labels_a[i], set()).add(labels_b[i])
        assert all(len(v) == 1 for v in mapping.values())


class TestEdgeListExact:
    def test_edges_iff_core_points_within_eps(self):
        pts = make_blobs(150, 2, 2, spread=1.0, domain=30.0, seed=2)
        eps, min_pts = 2.0, 4
        grid, core_mask = setup_grid(pts, eps, min_pts)
        cells = core_cells(grid, core_mask)
        edges = {frozenset(e) for e in edge_list_exact(grid, core_mask)}
        # Brute-force check over all cell pairs.
        names = list(cells)
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                a, b = names[i], names[j]
                pa, pb = pts[cells[a]], pts[cells[b]]
                sq = ((pa[:, None, :] - pb[None, :, :]) ** 2).sum(axis=2)
                expected = bool((sq <= eps * eps).any())
                assert (frozenset((a, b)) in edges) == expected


class TestApproxComponents:
    def test_matches_exact_for_well_separated_data(self):
        rng = np.random.default_rng(3)
        pts = np.vstack([
            rng.normal(0, 0.5, size=(50, 3)),
            rng.normal(40, 0.5, size=(50, 3)),
        ])
        grid, core_mask = setup_grid(pts, eps=2.0, min_pts=5)
        _la, ka = exact_components(grid, core_mask)
        _lb, kb = approx_components(grid, core_mask, rho=0.001)
        assert ka == kb == 2

    def test_never_fewer_components_than_inflated_exact(self):
        # Approx components sit between exact(eps) and exact(eps(1+rho)):
        # the approx component count is between the two exact counts.
        pts = make_blobs(250, 2, 4, spread=1.2, domain=40.0, seed=4)
        eps, rho, min_pts = 2.0, 0.2, 5
        grid, core_mask = setup_grid(pts, eps, min_pts)
        _la, k_exact = exact_components(grid, core_mask)
        _lb, k_approx = approx_components(grid, core_mask, rho=rho)
        grid2 = Grid(pts, eps * (1 + rho))
        # Same core set (Definition 1 unchanged): count components at the
        # inflated radius over the *same* core mask.
        _lc, k_inflated = exact_components(grid2, core_mask)
        assert k_inflated <= k_approx <= k_exact

    @pytest.mark.parametrize("exact_leaf_size", [0, 4])
    def test_leaf_size_variants_valid(self, exact_leaf_size):
        pts = make_blobs(150, 3, 2, spread=1.0, domain=30.0, seed=5)
        grid, core_mask = setup_grid(pts, eps=2.0, min_pts=4)
        _labels, k = approx_components(
            grid, core_mask, rho=0.05, exact_leaf_size=exact_leaf_size
        )
        assert k >= 1


class TestAssignBorders:
    def test_border_joins_cluster_of_nearby_core(self):
        # A short dense segment plus a point within eps of its tip but with
        # too few neighbours of its own to be core.
        blob = np.column_stack([np.linspace(0, 0.45, 10), np.zeros(10)])
        pts = np.vstack([blob, [[1.4, 0.0]], [[50.0, 50.0]]])
        grid, core_mask = setup_grid(pts, eps=1.0, min_pts=5)
        assert core_mask[:10].all() and not core_mask[10]
        labels, _k = exact_components(grid, core_mask)
        borders = assign_borders(grid, core_mask, labels)
        assert borders[10] == (labels[9],)
        assert 11 not in borders  # far away: noise

    def test_border_between_two_clusters_gets_both(self):
        # Two dense columns with a single point within eps of cores of both
        # but with a sub-MinPts neighbourhood itself (the paper's o10).
        ys = np.linspace(0, 2, 21)
        left = np.column_stack([np.zeros(21), ys])
        right = np.column_stack([np.full(21, 2.0), ys])
        middle = np.array([[1.0, 1.0]])
        pts = np.vstack([left, right, middle])
        grid, core_mask = setup_grid(pts, eps=1.05, min_pts=16)
        assert not core_mask[42]
        labels, k = exact_components(grid, core_mask)
        assert k == 2
        borders = assign_borders(grid, core_mask, labels)
        assert len(borders[42]) == 2

    def test_no_borders_when_all_core(self):
        pts = np.zeros((8, 2))
        grid, core_mask = setup_grid(pts, eps=1.0, min_pts=2)
        labels, _k = exact_components(grid, core_mask)
        assert assign_borders(grid, core_mask, labels) == {}
