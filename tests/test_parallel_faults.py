"""Fault-injection tests for the supervised parallel executor.

Every test compares the supervised run under injected worker faults
against the serial oracle: recovery is only correct if the output is
*identical* (labels, core mask, border memberships), not merely similar.
Faults are injected via :mod:`repro.runtime.faultinject`, which addresses
shards as ``(phase, shard_seq)`` and coordinates once-only kill/hang
firings across processes, so the retry after recovery succeeds
deterministically.
"""

import numpy as np
import pytest

from repro.api import dbscan
from repro.errors import WorkerPoolError
from repro.parallel import ParallelConfig
from repro.runtime.faultinject import inject_faults
from repro.runtime.resilient import ResiliencePolicy, run_resilient

EPS = 5.0
MIN_PTS = 4


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(7)
    return rng.uniform(0.0, 100.0, size=(400, 2))


@pytest.fixture(scope="module")
def serial(points):
    return dbscan(points, EPS, MIN_PTS, algorithm="grid")


def assert_identical(serial_result, recovered, name):
    """Byte-identical labeling: labels, core mask, and border memberships."""
    assert np.array_equal(serial_result.labels, recovered.labels), f"{name}: labels differ"
    assert np.array_equal(
        serial_result.core_mask, recovered.core_mask
    ), f"{name}: core mask differs"
    for idx in np.flatnonzero(serial_result.border_mask):
        assert serial_result.memberships_of(int(idx)) == recovered.memberships_of(
            int(idx)
        ), f"{name}: border point {idx} has different memberships"


def cfg(**overrides):
    defaults = dict(workers=2, min_points=0, shard_timeout=5.0)
    defaults.update(overrides)
    return ParallelConfig(**defaults)


class TestWorkerCrashRecovery:
    def test_kill_one_worker_per_phase(self, points, serial):
        with inject_faults(
            kill_shards=[("cores", 0), ("components", 0), ("borders", 0)]
        ) as plan:
            recovered = dbscan(points, EPS, MIN_PTS, algorithm="grid", workers=cfg())
            assert plan.worker_faults_fired("kill") >= 1
        assert_identical(serial, recovered, "kill-per-phase")
        sup = recovered.meta["supervisor"]
        assert sup["respawns"] >= 1
        assert len(sup["retries"]) >= 1

    def test_fault_free_run_records_zero_events(self, points, serial):
        recovered = dbscan(points, EPS, MIN_PTS, algorithm="grid", workers=cfg())
        assert_identical(serial, recovered, "fault-free")
        sup = recovered.meta["supervisor"]
        assert sup == {
            "retries": [],
            "quarantined": [],
            "respawns": 0,
            "timeouts": 0,
            "serial_requeued": 0,
        }


class TestHangDetection:
    def test_hung_shard_times_out_and_retry_succeeds(self, points, serial):
        with inject_faults(hang_shards=[("borders", 0)], hang_seconds=30.0):
            recovered = dbscan(
                points, EPS, MIN_PTS, algorithm="grid", workers=cfg(shard_timeout=0.5)
            )
        assert_identical(serial, recovered, "hang")
        sup = recovered.meta["supervisor"]
        assert sup["timeouts"] >= 1
        assert sup["respawns"] >= 1


class TestQuarantine:
    def test_poison_shard_is_quarantined(self, points, serial):
        # Poison fires on *every* worker attempt but computes fine in the
        # parent: retries must exhaust, then quarantine must run it serially.
        with inject_faults(poison_shards=[("cores", 1)]):
            recovered = dbscan(
                points, EPS, MIN_PTS, algorithm="grid",
                workers=cfg(max_shard_retries=1),
            )
        assert_identical(serial, recovered, "poison")
        quarantined = recovered.meta["supervisor"]["quarantined"]
        assert any(q["phase"] == "cores" and q["shard"] == 1 for q in quarantined)

    def test_serial_requeue_after_respawn_budget(self, points, serial):
        # Retry budget left but respawn budget spent: the remaining shards
        # must drain through the parent-side serial-requeue rung.
        with inject_faults(kill_shards=[("cores", 0)], shard_fault_times=1):
            recovered = dbscan(
                points, EPS, MIN_PTS, algorithm="grid",
                workers=cfg(shard_timeout=1.0, max_shard_retries=2,
                            max_pool_respawns=0),
            )
        assert_identical(serial, recovered, "serial-requeue")
        assert recovered.meta["supervisor"]["serial_requeued"] >= 1


class TestBudgetExhaustion:
    def test_exhausted_budgets_raise_worker_pool_error(self, points):
        broken = cfg(
            shard_timeout=1.0, max_shard_retries=0,
            quarantine=False, max_pool_respawns=0,
        )
        with inject_faults(kill_shards=[("cores", 0)], shard_fault_times=2):
            with pytest.raises(WorkerPoolError) as ei:
                dbscan(points, EPS, MIN_PTS, algorithm="grid", workers=broken)
        # The error carries the supervisor's ledger for post-mortems.
        assert ei.value.stats is not None

    def test_resilient_degrades_instead_of_raising(self, points):
        broken = cfg(
            shard_timeout=1.0, max_shard_retries=0,
            quarantine=False, max_pool_respawns=0,
        )
        policy = ResiliencePolicy(workers=broken, tiers=("exact", "approx"), rho=0.001)
        # One firing: the exact tier consumes it and fails; approx runs clean.
        with inject_faults(kill_shards=[("cores", 0)], shard_fault_times=1):
            result = run_resilient(points, EPS, MIN_PTS, policy)
        res = result.meta["resilience"]
        assert res["tier"] == "approx"
        assert res["attempts"][0]["error"] == "WorkerPoolError"
        assert "supervisor" in res["attempts"][0]
        # The winning tier's own (clean) supervisor ledger is folded in too.
        assert "supervisor" in res
