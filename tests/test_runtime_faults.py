"""Fault-injection tests for the resilient runtime.

Every failure mode of ``repro.runtime`` is driven deterministically via
:func:`repro.runtime.inject_faults` — no real long runs, no real OOM:

* all six algorithms honour ``time_budget`` and raise
  :class:`~repro.errors.TimeoutExceeded` within a real-time tolerance when
  the injected clock jumps past the budget;
* the degradation cascade always returns a labelled clustering, with
  ``meta["resilience"]`` naming the tier taken;
* a run interrupted mid-pipeline resumes from its checkpoint and produces
  labels identical to an uninterrupted run;
* corrupt checkpoints degrade to a fresh recompute, never a failure.
"""

from __future__ import annotations

import logging
import time

import numpy as np
import pytest

from repro.algorithms.approx import approx_dbscan
from repro.api import dbscan
from repro.errors import (
    CheckpointError,
    MemoryBudgetExceeded,
    ParameterError,
    TimeoutExceeded,
)
from repro.runtime import (
    CheckpointStore,
    Deadline,
    MemoryBudget,
    ResiliencePolicy,
    as_deadline,
    as_memory_budget,
    current_rss,
    fingerprint_points,
    inject_faults,
    run_resilient,
    sampled_dbscan,
)
from repro.runtime import clock
from repro.runtime.memory import estimate_grid_bytes

from .conftest import make_blobs

#: Real-time tolerance for a cooperative timeout to surface (seconds).
TIMEOUT_TOLERANCE = 0.5

#: Injected forward clock jump, far past any budget used below.
SKEW = 1000.0


@pytest.fixture(scope="module")
def pts_3d():
    return make_blobs(240, 3, 3, spread=1.2, domain=60.0, seed=21)


@pytest.fixture(scope="module")
def pts_2d():
    return make_blobs(240, 2, 3, spread=1.0, domain=60.0, seed=22)


def _run(algorithm, pts, **kw):
    if algorithm == "approx":
        return approx_dbscan(pts, 3.0, 5, rho=0.01, **kw)
    return dbscan(pts, 3.0, 5, algorithm=algorithm, **kw)


class TestDeadlinesEverywhere:
    """Every algorithm times out promptly under an injected clock skip."""

    @pytest.mark.parametrize(
        "algorithm", ["grid", "kdd96", "cit08", "brute", "gunawan2d", "approx"]
    )
    def test_timeout_within_tolerance(self, algorithm, pts_3d, pts_2d):
        pts = pts_2d if algorithm == "gunawan2d" else pts_3d
        # skew_after=1: the Deadline's own start read stays clean, every
        # later read jumps by SKEW, so the first poll must raise.
        start = time.perf_counter()
        with inject_faults(clock_skew=SKEW, skew_after=1) as plan:
            with pytest.raises(TimeoutExceeded) as excinfo:
                _run(algorithm, pts, time_budget=5.0)
        elapsed = time.perf_counter() - start
        assert elapsed < TIMEOUT_TOLERANCE, (
            f"{algorithm} took {elapsed:.3f}s of real time to honour the deadline"
        )
        assert excinfo.value.elapsed > excinfo.value.budget
        assert plan.clock_reads >= 2

    @pytest.mark.parametrize("algorithm", ["grid", "kdd96", "cit08", "brute", "approx"])
    def test_no_budget_is_unaffected_by_skew(self, algorithm, pts_3d):
        with inject_faults(clock_skew=SKEW, skew_after=1):
            res = _run(algorithm, pts_3d)
        assert res.n == len(pts_3d)

    def test_memory_budget_trips(self, pts_3d):
        with inject_faults(memory_fail_after=1):
            with pytest.raises(MemoryBudgetExceeded) as excinfo:
                dbscan(pts_3d, 3.0, 5, memory_budget_mb=256.0)
        assert excinfo.value.budget_bytes < excinfo.value.observed_bytes


class TestDegradationCascade:
    def test_unstressed_run_serves_exact(self, pts_3d):
        res = run_resilient(pts_3d, 3.0, 5)
        info = res.meta["resilience"]
        assert info["tier"] == "exact"
        assert info["attempts"] == []
        assert res.n == len(pts_3d)
        assert len(res.labels) == len(pts_3d)

    def test_clock_skew_degrades_to_approx(self, pts_3d, caplog):
        # The skew fires between the exact tier's Deadline start and its
        # first poll; the approx tier starts *after* the jump, so its
        # elapsed time reads normally and it completes.
        policy = ResiliencePolicy(time_budget=5.0, rho=0.01)
        with caplog.at_level(logging.WARNING, logger="repro"):
            with inject_faults(clock_skew=SKEW, skew_after=1):
                res = run_resilient(pts_3d, 3.0, 5, policy)
        info = res.meta["resilience"]
        assert info["tier"] == "approx"
        assert [a["tier"] for a in info["attempts"]] == ["exact"]
        assert info["attempts"][0]["error"] == "TimeoutExceeded"
        assert "Sandwich" in info["guarantee"]
        assert len(res.labels) == len(pts_3d)
        assert any("degrad" in rec.message for rec in caplog.records)

    def test_memory_pressure_degrades_to_sampled(self, pts_3d, caplog):
        # The fake RSS trips every budgeted tier; the final tier runs
        # unbudgeted and must return.
        policy = ResiliencePolicy(memory_budget_mb=512.0, rho=0.01, sample_size=150)
        with caplog.at_level(logging.WARNING, logger="repro"):
            with inject_faults(memory_fail_after=1):
                res = run_resilient(pts_3d, 3.0, 5, policy)
        info = res.meta["resilience"]
        assert info["tier"] == "sampled"
        assert [a["tier"] for a in info["attempts"]] == ["exact", "approx"]
        assert all(a["error"] == "MemoryBudgetExceeded" for a in info["attempts"])
        assert len(res.labels) == len(pts_3d)
        assert res.meta["sample_size"] == 150
        warnings = [rec for rec in caplog.records if rec.levelno >= logging.WARNING]
        assert len(warnings) >= 2

    def test_cascade_always_labels_clusterable_input(self, pts_3d):
        # Even under combined clock and memory faults the cascade returns a
        # clustering whose labels cover every point.
        policy = ResiliencePolicy(time_budget=5.0, memory_budget_mb=512.0, rho=0.01)
        with inject_faults(clock_skew=SKEW, skew_after=1, memory_fail_after=1):
            res = run_resilient(pts_3d, 3.0, 5, policy)
        assert res.meta["resilience"]["tier"] in ("approx", "sampled")
        assert len(res.labels) == len(pts_3d)
        assert res.n_clusters >= 1

    def test_empty_input(self):
        res = run_resilient([], 3.0, 5)
        assert res.n == 0 and res.n_clusters == 0
        assert "resilience" in res.meta

    def test_policy_validation(self):
        with pytest.raises(ParameterError):
            ResiliencePolicy(tiers=())
        with pytest.raises(ParameterError):
            ResiliencePolicy(tiers=("exact", "quantum"))
        with pytest.raises(ParameterError):
            ResiliencePolicy(sample_size=0)

    def test_sampled_dbscan_standalone(self, pts_3d):
        res = sampled_dbscan(pts_3d, 3.0, 5, rho=0.01, sample_size=150, seed=0)
        assert res.n == len(pts_3d)
        assert res.meta["algorithm"] == "sampled"
        assert res.meta["sampled_min_pts"] >= 1


class TestCheckpointResume:
    def _interrupt(self, pts, ckpt_path, skew_after):
        """Run the grid algorithm until the injected skip kills it."""
        try:
            with inject_faults(clock_skew=SKEW, skew_after=skew_after):
                dbscan(pts, 3.0, 5, time_budget=5.0, checkpoint=ckpt_path)
        except TimeoutExceeded:
            return True
        return False

    def test_resume_matches_uninterrupted_run(self, pts_3d, tmp_path):
        clean = dbscan(pts_3d, 3.0, 5)
        resumed_phases = []
        for skew_after in (2, 10, 40, 160, 640):
            ckpt = str(tmp_path / f"resume_{skew_after}.npz")
            store = CheckpointStore(ckpt)
            interrupted = self._interrupt(pts_3d, ckpt, skew_after)
            if not (interrupted and store.exists()):
                continue
            saved_phase = store.load()["phase"]
            res = dbscan(pts_3d, 3.0, 5, checkpoint=ckpt)
            assert res.meta["resumed_from_phase"] == saved_phase
            resumed_phases.append(saved_phase)
            assert np.array_equal(res.labels, clean.labels)
            assert np.array_equal(res.core_mask, clean.core_mask)
        # At least one injection point must land after a persisted phase,
        # or the resume path was never exercised.
        assert resumed_phases, "no skew_after value produced a resumable interrupt"

    def test_checkpoint_ignored_for_different_input(self, pts_3d, pts_2d, tmp_path):
        ckpt = str(tmp_path / "other_input.npz")
        dbscan(pts_3d, 3.0, 5, checkpoint=ckpt)
        other = make_blobs(240, 3, 3, spread=1.2, domain=60.0, seed=99)
        res = dbscan(other, 3.0, 5, checkpoint=ckpt)
        assert "resumed_from_phase" not in res.meta

    def test_checkpoint_ignored_for_different_params(self, pts_3d, tmp_path):
        ckpt = str(tmp_path / "other_params.npz")
        dbscan(pts_3d, 3.0, 5, checkpoint=ckpt)
        res = dbscan(pts_3d, 3.5, 5, checkpoint=ckpt)
        assert "resumed_from_phase" not in res.meta

    def test_checkpoint_bound_to_worker_count(self, pts_3d, tmp_path):
        # Regression: the fingerprint once ignored the worker count, so a
        # parallel run could silently resume serial state (and vice versa).
        from repro.parallel import ParallelConfig

        ckpt = str(tmp_path / "workers.npz")
        two = ParallelConfig(workers=2, min_points=0)
        first = dbscan(pts_3d, 3.0, 5, checkpoint=ckpt, workers=two)
        assert "resumed_from_phase" not in first.meta

        again = dbscan(pts_3d, 3.0, 5, checkpoint=ckpt, workers=two)
        assert again.meta["resumed_from_phase"] == "borders"

        serial = dbscan(pts_3d, 3.0, 5, checkpoint=ckpt, workers=1)
        assert "resumed_from_phase" not in serial.meta  # mismatch: no resume

        assert np.array_equal(first.labels, again.labels)
        assert np.array_equal(first.labels, serial.labels)

    @pytest.mark.parametrize("mode", ["truncate", "garbage"])
    def test_corrupt_checkpoint_recovers(self, pts_3d, tmp_path, mode, caplog):
        ckpt = str(tmp_path / f"corrupt_{mode}.npz")
        clean = dbscan(pts_3d, 3.0, 5)
        with inject_faults(corrupt_checkpoints=True, corruption_mode=mode) as plan:
            first = dbscan(pts_3d, 3.0, 5, checkpoint=ckpt)
        assert plan.checkpoints_corrupted >= 1
        assert np.array_equal(first.labels, clean.labels)
        # The rerun finds only damaged bytes: WARNING + fresh recompute.
        with caplog.at_level(logging.WARNING, logger="repro"):
            res = dbscan(pts_3d, 3.0, 5, checkpoint=ckpt)
        assert "resumed_from_phase" not in res.meta
        assert np.array_equal(res.labels, clean.labels)
        assert any("checkpoint" in rec.message for rec in caplog.records)


class TestRuntimePrimitives:
    def test_unbounded_deadline_is_noop(self):
        d = Deadline(None)
        d.check()
        assert not d.expired()
        assert d.remaining() is None

    def test_expired_deadline_raises(self):
        d = Deadline(0.5, start=clock.now() - 1.0)
        assert d.expired()
        assert d.remaining() < 0
        with pytest.raises(TimeoutExceeded):
            d.check()

    def test_as_deadline_normalisation(self):
        assert as_deadline() is None
        d = Deadline(1.0)
        assert as_deadline(5.0, d) is d
        fresh = as_deadline(2.0)
        assert fresh.budget == 2.0

    def test_memory_budget_estimate_trips_before_allocating(self):
        guard = MemoryBudget(1.0)  # 1 MB: any real estimate overshoots
        with pytest.raises(MemoryBudgetExceeded) as excinfo:
            guard.charge_estimate(estimate_grid_bytes(10_000, 3), "grid")
        assert excinfo.value.phase == "grid"

    def test_memory_budget_noop_when_unbounded(self):
        guard = MemoryBudget(None)
        guard.charge_estimate(1 << 40)
        guard.check()

    def test_as_memory_budget_normalisation(self):
        assert as_memory_budget() is None
        guard = MemoryBudget(10.0)
        assert as_memory_budget(5.0, guard) is guard
        assert as_memory_budget(5.0).limit_bytes == 5e6

    def test_current_rss_positive(self):
        assert current_rss() > 0

    def test_checkpoint_roundtrip(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "roundtrip.npz"))
        fp = fingerprint_points(np.arange(12, dtype=float).reshape(4, 3))
        params = {"algorithm": "grid", "eps": 1.0, "min_pts": 3, "rho": None}
        borders = {2: (0,), 5: (0, 1)}
        store.save(
            "borders",
            fp,
            params,
            core_mask=np.array([True, False, True, True]),
            core_labels=np.array([0, -1, 0, 1]),
            n_components=2,
            borders=borders,
        )
        state = store.load_matching(fp, params)
        assert state["phase"] == "borders"
        assert state["borders"] == borders
        assert state["n_components"] == 2
        assert store.load_matching("deadbeef", params) is None
        assert store.load_matching(fp, {**params, "eps": 2.0}) is None
        store.clear()
        assert not store.exists()
        store.clear()  # idempotent

    def test_truncated_checkpoint_raises_on_load(self, tmp_path):
        path = tmp_path / "trunc.npz"
        store = CheckpointStore(str(path))
        store.save("grid", "fp", {"eps": 1.0})
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(CheckpointError):
            store.load()
        assert store.load_matching("fp", {"eps": 1.0}) is None

    def test_fingerprint_binds_to_content(self):
        a = np.zeros((5, 2))
        b = np.zeros((5, 2))
        b[0, 0] = 1e-12
        assert fingerprint_points(a) == fingerprint_points(np.zeros((5, 2)))
        assert fingerprint_points(a) != fingerprint_points(b)

    def test_inject_faults_rejects_nesting(self):
        with inject_faults(clock_skew=1.0):
            with pytest.raises(RuntimeError):
                with inject_faults(clock_skew=1.0):
                    pass

    def test_inject_faults_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            with inject_faults(corruption_mode="shred"):
                pass

    def test_hooks_removed_after_block(self):
        before = clock.now()
        with inject_faults(clock_skew=SKEW, skew_after=0):
            pass
        assert clock.now() - before < 1.0
