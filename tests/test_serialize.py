"""Tests for clustering-result persistence."""

import numpy as np
import pytest

from repro.algorithms.exact_grid import exact_grid_dbscan
from repro.core.result import Clustering
from repro.core.serialize import from_dict, load_clustering, save_clustering, to_dict
from repro.errors import DataError

from .conftest import make_blobs


def multi_membership_result():
    # Border point 2 in both clusters — the hard case for round-trips.
    mask = np.array([True, False, False, True])
    return Clustering(4, [{0, 2}, {2, 3}], mask, meta={"algorithm": "handmade", "eps": 1.5})


class TestDictRoundTrip:
    def test_roundtrip_preserves_everything(self):
        original = multi_membership_result()
        restored = from_dict(to_dict(original))
        assert restored == original
        assert restored.meta["algorithm"] == "handmade"
        assert restored.memberships_of(2) == (0, 1)

    def test_bad_format_rejected(self):
        with pytest.raises(DataError):
            from_dict({"format": "something/else"})

    def test_numpy_meta_becomes_plain(self):
        mask = np.array([True])
        result = Clustering(1, [{0}], mask, meta={"eps": np.float64(2.0),
                                                  "ids": np.array([1, 2])})
        payload = to_dict(result)
        assert payload["meta"]["eps"] == 2.0
        assert payload["meta"]["ids"] == [1, 2]


@pytest.mark.parametrize("ext", [".json", ".npz"])
class TestFileRoundTrip:
    def test_handmade(self, tmp_path, ext):
        original = multi_membership_result()
        path = str(tmp_path / f"result{ext}")
        save_clustering(original, path)
        restored = load_clustering(path)
        assert restored == original
        assert restored.memberships_of(2) == (0, 1)

    def test_real_clustering(self, tmp_path, ext):
        pts = make_blobs(150, 3, 3, spread=1.2, domain=30.0, seed=0)
        original = exact_grid_dbscan(pts, 2.5, 5)
        path = str(tmp_path / f"result{ext}")
        save_clustering(original, path)
        restored = load_clustering(path)
        assert restored.same_clusters(original)
        assert (restored.core_mask == original.core_mask).all()
        assert restored.meta["algorithm"] == "exact_grid"

    def test_all_noise(self, tmp_path, ext):
        original = Clustering(3, [], np.zeros(3, dtype=bool))
        path = str(tmp_path / f"noise{ext}")
        save_clustering(original, path)
        restored = load_clustering(path)
        assert restored.n_clusters == 0
        assert restored.n == 3


class TestErrors:
    def test_unsupported_extension(self, tmp_path):
        with pytest.raises(DataError):
            save_clustering(multi_membership_result(), str(tmp_path / "x.pickle"))

    def test_missing_file(self):
        with pytest.raises(DataError):
            load_clustering("/nonexistent/result.json")
