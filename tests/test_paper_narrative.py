"""The paper's central claims, as executable assertions.

Each test corresponds to a numbered claim of the paper; together they form
a machine-checked abstract.
"""

import numpy as np
import pytest

from repro import approx_dbscan, dbscan
from repro.algorithms.brute import brute_dbscan
from repro.evaluation.compare import sandwich_holds
from repro.hardness import random_instance, usec_brute, usec_via_dbscan

from .conftest import make_blobs


class TestSection11MisClaim:
    """Section 1.1: the original algorithm performs n range queries whose
    total output alone is Theta(n^2) when all points are within eps."""

    def test_footnote1_quadratic_retrieval(self):
        n = 300
        points = np.zeros((n, 2))  # all points coincide
        result = dbscan(points, 1.0, 5, algorithm="kdd96")
        # n queries, each returning all n points: n^2 retrieved.
        assert result.meta["range_queries"] == n
        assert result.meta["points_retrieved"] == n * n

    def test_index_choice_does_not_help(self):
        n = 200
        points = np.zeros((n, 3))
        for index in ("rtree", "kdtree"):
            from repro.algorithms.kdd96 import kdd96_dbscan

            result = kdd96_dbscan(points, 1.0, 5, index=index)
            assert result.meta["points_retrieved"] == n * n

    def test_grid_algorithm_avoids_the_blow_up(self):
        # Same adversarial input: the grid algorithm sees one dense cell
        # (every point core by the cell-size shortcut) and does no
        # quadratic distance work at all.
        n = 5000
        points = np.zeros((n, 2))
        result = dbscan(points, 1.0, 5, algorithm="grid")
        assert result.n_clusters == 1
        assert result.meta["grid_cells"] == 1


class TestSection22Gunawan:
    """Section 2.2: 2D is genuinely solved; the grid algorithm matches the
    unique DBSCAN output."""

    def test_gunawan_equals_brute_2d(self):
        pts = make_blobs(250, 2, 4, spread=1.2, domain=40.0, seed=0)
        gunawan = dbscan(pts, 2.5, 5, algorithm="gunawan2d")
        reference = brute_dbscan(pts, 2.5, 5)
        assert gunawan.same_clusters(reference)


class TestLemma4:
    """Lemma 4 / Theorem 1: DBSCAN solves USEC with MinPts = 1."""

    @pytest.mark.parametrize("d", [3, 5])
    def test_reduction_faithful(self, d):
        for seed in range(6):
            inst = random_instance(40, 25, d, radius=30.0, seed=seed)
            via = usec_via_dbscan(
                inst, lambda P, e, m: dbscan(P, e, m, algorithm="grid")
            )
            assert via == usec_brute(inst)


class TestTheorem3Sandwich:
    """Theorem 3: the approximate result is sandwiched between exact
    DBSCAN at eps and at eps(1+rho)."""

    @pytest.mark.parametrize("rho", [0.001, 0.1, 1.0])
    def test_sandwich(self, rho):
        pts = make_blobs(180, 3, 4, spread=1.5, domain=30.0, seed=1)
        eps, min_pts = 2.2, 5
        approx = approx_dbscan(pts, eps, min_pts, rho=rho)
        exact = brute_dbscan(pts, eps, min_pts)
        inflated = brute_dbscan(pts, eps * (1 + rho), min_pts)
        assert sandwich_holds(exact, approx, inflated)


class TestSection52QualityNarrative:
    """Section 5.2: rho = 0.001 returns exactly DBSCAN's clusters at stable
    radii, and only deliberately boundary-hugging radii can break larger
    rho."""

    def test_default_rho_exact_on_stable_radius(self):
        rng = np.random.default_rng(2)
        pts = np.vstack([
            rng.normal(0, 1.0, size=(120, 3)),
            rng.normal(50, 1.0, size=(120, 3)),
        ])
        eps = 5.0  # blobs are 50 apart: hugely stable
        approx = approx_dbscan(pts, eps, 10, rho=0.001)
        exact = brute_dbscan(pts, eps, 10)
        assert approx.same_clusters(exact)

    def test_unstable_radius_breaks_large_rho_only(self):
        # Core-core gap a hair over eps: rho spanning the gap may merge,
        # and our implementation does for every rho whose inflated radius
        # covers the gap (duplicated points make this deterministic).
        a = np.tile([[0.0, 0.0]], (20, 1))
        b = np.tile([[2.001, 0.0]], (20, 1))
        pts = np.vstack([a, b])
        exact = brute_dbscan(pts, 2.0, 3)
        assert exact.n_clusters == 2
        merged = approx_dbscan(pts, 2.0, 3, rho=0.01)
        assert merged.n_clusters == 1  # 2.001 <= 2.0 * 1.01
        # But with the gap outside eps(1+rho) the result must stay exact.
        safe = approx_dbscan(pts, 2.0, 3, rho=0.0001)
        assert safe.same_clusters(exact)


class TestTheorem4LinearBehaviour:
    """Theorem 4 (shape): OurApprox scales gently with n on clustered data
    while the number of Lemma 5 cells stays O(n)."""

    def test_structure_size_linear(self):
        from repro.grid.hierarchy import CountingHierarchy

        sizes = []
        for n in (1000, 2000, 4000):
            pts = make_blobs(n, 3, 5, spread=1.0, domain=60.0, seed=3)
            sizes.append(CountingHierarchy(pts, 2.0, 0.001).node_count())
        # Doubling n must not more than ~double the structure (plus slack).
        assert sizes[2] <= sizes[0] * 4 * 1.5
