"""Tests for the graded cluster metrics and the grid-accelerated USEC solver."""

import numpy as np
import pytest

from repro.core.result import Clustering
from repro.errors import DataError
from repro.evaluation.compare import best_match_jaccard, cluster_f1
from repro.hardness import planted_instance, random_instance, usec_brute
from repro.hardness.usec_fast import usec_grid


def make(n, clusters, cores):
    mask = np.zeros(n, dtype=bool)
    mask[list(cores)] = True
    return Clustering(n, clusters, mask)


class TestBestMatchJaccard:
    def test_identical(self):
        a = make(6, [{0, 1, 2}, {3, 4}], {0, 3})
        assert best_match_jaccard(a, a) == 1.0

    def test_disjoint(self):
        a = make(4, [{0, 1}], {0})
        b = make(4, [{2, 3}], {2})
        assert best_match_jaccard(a, b) == 0.0

    def test_partial_overlap(self):
        a = make(4, [{0, 1}], {0})
        b = make(4, [{0, 1, 2}], {0})
        assert best_match_jaccard(a, b) == pytest.approx(2 / 3)

    def test_both_empty(self):
        a = make(3, [], set())
        assert best_match_jaccard(a, a) == 1.0

    def test_one_empty(self):
        a = make(3, [], set())
        b = make(3, [{0}], {0})
        assert best_match_jaccard(a, b) == 0.0

    def test_size_mismatch(self):
        with pytest.raises(DataError):
            best_match_jaccard(make(3, [], set()), make(4, [], set()))

    def test_symmetric(self):
        a = make(6, [{0, 1, 2}], {0})
        b = make(6, [{1, 2, 3}, {4, 5}], {1, 4})
        assert best_match_jaccard(a, b) == best_match_jaccard(b, a)


class TestClusterF1:
    def test_identical(self):
        a = make(5, [{0, 1}, {2, 3}], {0, 2})
        assert cluster_f1(a, a) == 1.0

    def test_no_overlap(self):
        a = make(4, [{0, 1}], {0})
        b = make(4, [{2, 3}], {2})
        assert cluster_f1(a, b) == 0.0

    def test_split_cluster_partial_credit(self):
        # b splits a's big cluster in two: b's halves each overlap a's
        # cluster at Jaccard 0.5, not above the threshold, so recall drops.
        a = make(8, [{0, 1, 2, 3, 4, 5, 6, 7}], {0})
        b = make(8, [{0, 1, 2, 3}, {4, 5, 6, 7}], {0, 4})
        assert cluster_f1(a, b) == 0.0
        assert cluster_f1(a, b, threshold=0.4) == 1.0

    def test_threshold_strictness(self):
        a = make(4, [{0, 1}], {0})
        b = make(4, [{0, 1, 2, 3}], {0})
        # Jaccard = 0.5, strictly-greater threshold 0.5 excludes the match.
        assert cluster_f1(a, b, threshold=0.5) == 0.0
        assert cluster_f1(a, b, threshold=0.49) == 1.0

    def test_approx_vs_exact_high_f1(self):
        from repro.algorithms.approx import approx_dbscan
        from repro.algorithms.brute import brute_dbscan
        from .conftest import make_blobs

        pts = make_blobs(200, 3, 3, spread=1.2, domain=35.0, seed=0)
        a = approx_dbscan(pts, 2.5, 5, rho=0.1)
        b = brute_dbscan(pts, 2.5, 5)
        assert cluster_f1(a, b) >= 0.8
        assert best_match_jaccard(a, b) >= 0.8


class TestUSECGrid:
    @pytest.mark.parametrize("d", [1, 2, 3, 4, 5])
    def test_matches_brute_random(self, d):
        for seed in range(6):
            inst = random_instance(60, 40, d, radius=25.0, seed=seed)
            assert usec_grid(inst) == usec_brute(inst)

    @pytest.mark.parametrize("answer", [True, False])
    def test_matches_brute_planted(self, answer):
        for seed in range(4):
            inst = planted_instance(50, 25, 3, radius=12.0, answer=answer, seed=seed)
            assert usec_grid(inst) == answer

    def test_boundary_pair(self):
        from repro.hardness import USECInstance

        inst = USECInstance(
            np.array([[0.0, 0.0]]), np.array([[1.0, 0.0]]), radius=1.0
        )
        assert usec_grid(inst)

    def test_single_point_single_ball(self):
        from repro.hardness import USECInstance

        inst = USECInstance(
            np.array([[5.0, 5.0, 5.0]]), np.array([[50.0, 50.0, 50.0]]), radius=1.0
        )
        assert not usec_grid(inst)

    def test_large_random_agreement(self):
        inst = random_instance(800, 500, 3, radius=6.0, domain=200.0, seed=42)
        assert usec_grid(inst) == usec_brute(inst)
