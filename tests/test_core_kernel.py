"""Differential oracle + property tests for the staged core/border kernels.

The contract under test (see ``repro/core/corekernel.py``): the staged,
batched core-labeling and border-assignment kernels must produce results
**byte-identical** to the reference per-cell loops (``kernel="loop"``) on
every path that consumes them — serial across dims and ``MinPts``,
``known_core`` sweep carry, shard restriction (``cells=``), parallel
workers on both transports (pickled and shared-memory slabs), and the
degenerate empty/singleton grids.  ``neighbor_counts`` stays the brute
oracle grounding both kernels in the raw ``|B(p, eps)| >= MinPts``
predicate.  On top of the end-to-end oracle: the ``core_*``/``border_*``
counter funnels must partition cleanly, and a deadline must abort the
staged batched loops promptly under an injected clock skip.
"""

import pickle
import time

import numpy as np
import pytest

from repro.core import cellgraph as cg
from repro.core.border import assign_borders
from repro.core.corekernel import (
    BorderAssignments,
    assign_borders_staged,
    grid_soa,
    label_cores_staged,
)
from repro.core.labeling import label_cores, neighbor_counts
from repro.errors import ParameterError, TimeoutExceeded
from repro.grid import counters
from repro.grid.cells import Grid
from repro.parallel import unpublish_grid
from repro.parallel.executor import (
    ParallelConfig,
    parallel_assign_borders,
    parallel_label_cores,
)
from repro.runtime import Deadline, inject_faults


def _dataset(seed: int, n: int, d: int, eps: float):
    """Blended blobs + noise: dense cells, sparse cells, and noise cells."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0, 100, size=(4, d))
    blob = centers[rng.integers(0, 4, size=n // 2)] + rng.normal(
        0, 3.0, size=(n // 2, d)
    )
    noise = rng.uniform(0, 100, size=(n - n // 2, d))
    return Grid(np.vstack([blob, noise]), eps)


def _labeled(seed: int, n: int, d: int, eps: float, min_pts: int):
    grid = _dataset(seed, n, d, eps)
    core = label_cores(grid, min_pts, kernel="loop")
    labels, _ = cg.exact_components(grid, core)
    return grid, core, labels


class TestCoreOracle:
    @pytest.mark.parametrize("d", [2, 3])
    @pytest.mark.parametrize("min_pts", [2, 5, 12])
    def test_staged_matches_loop_and_brute(self, d, min_pts):
        grid = _dataset(d * 10 + min_pts, 800, d, 7.0)
        loop = label_cores(grid, min_pts, kernel="loop")
        staged = label_cores(grid, min_pts, kernel="staged")
        assert np.array_equal(staged, loop)
        # neighbor_counts stays the brute oracle grounding both kernels.
        assert np.array_equal(loop, neighbor_counts(grid) >= min_pts)

    def test_min_pts_one_accepts_every_occupied_cell(self):
        grid = _dataset(3, 200, 2, 4.0)
        assert label_cores(grid, 1, kernel="staged").all()

    def test_allpairs_adjacency_regime(self):
        # d=5 pushes the grid into the all-pairs dict adjacency fallback,
        # which the staged kernel repacks into CSR once per grid.
        grid = _dataset(4, 300, 5, 40.0)
        assert grid.uses_allpairs_adjacency
        assert np.array_equal(
            label_cores(grid, 4, kernel="staged"),
            label_cores(grid, 4, kernel="loop"),
        )

    def test_known_core_carry(self):
        grid_small = _dataset(5, 700, 2, 5.0)
        known = label_cores(grid_small, 5, kernel="loop")
        assert known.any() and not known.all()
        grid = Grid(grid_small.points, 8.0)
        plain = label_cores(grid, 5, kernel="loop")
        for kernel in ("staged", "loop"):
            carried = label_cores(grid, 5, kernel=kernel, known_core=known)
            assert np.array_equal(carried, plain), kernel

    def test_all_known_short_circuits(self):
        grid = _dataset(6, 300, 2, 6.0)
        known = np.ones(len(grid.points), dtype=bool)
        assert label_cores(grid, 3, kernel="staged", known_core=known).all()

    def test_shard_restriction(self):
        grid = _dataset(7, 600, 2, 6.0)
        keys = list(grid.cells.keys())
        for shard in (keys[: len(keys) // 2], keys[::3], []):
            assert np.array_equal(
                label_cores(grid, 5, kernel="staged", cells=shard),
                label_cores(grid, 5, kernel="loop", cells=shard),
            )

    def test_shard_with_known_core_stays_inside_shard(self):
        # The loop leaves known points outside the shard's cells False;
        # the staged kernel must not mark them either.
        grid = _dataset(8, 500, 2, 6.0)
        known = label_cores(grid, 5, kernel="loop")
        keys = list(grid.cells.keys())
        half = keys[: len(keys) // 2]
        assert np.array_equal(
            label_cores(grid, 5, kernel="staged", cells=half, known_core=known),
            label_cores(grid, 5, kernel="loop", cells=half, known_core=known),
        )

    def test_empty_and_singleton_grids(self):
        empty = Grid(np.empty((0, 2)), 1.0)
        assert len(label_cores(empty, 3, kernel="staged")) == 0
        single = Grid(np.zeros((1, 2)), 1.0)
        assert np.array_equal(
            label_cores(single, 1, kernel="staged"), np.array([True])
        )
        assert np.array_equal(
            label_cores(single, 2, kernel="staged"), np.array([False])
        )

    def test_unknown_kernel_rejected(self):
        grid = _dataset(9, 60, 2, 6.0)
        with pytest.raises(ParameterError):
            label_cores(grid, 3, kernel="vectorised")
        with pytest.raises(ParameterError):
            assign_borders(grid, np.zeros(60, bool), np.zeros(60, int),
                           kernel="vectorised")


class TestBorderOracle:
    @pytest.mark.parametrize("d", [2, 3])
    @pytest.mark.parametrize("min_pts", [3, 6])
    def test_staged_matches_loop(self, d, min_pts):
        grid, core, labels = _labeled(d * 7 + min_pts, 800, d, 7.0, min_pts)
        loop = assign_borders(grid, core, labels, kernel="loop")
        staged = assign_borders(grid, core, labels, kernel="staged")
        assert staged == loop
        assert dict(staged.items()) == loop

    def test_shard_restriction(self):
        grid, core, labels = _labeled(20, 600, 2, 6.0, 5)
        keys = list(grid.cells.keys())
        for shard in (keys[: len(keys) // 2], keys[::3], []):
            staged = assign_borders(grid, core, labels, kernel="staged", cells=shard)
            loop = assign_borders(grid, core, labels, kernel="loop", cells=shard)
            assert staged == loop

    def test_no_cores_anywhere(self):
        grid = _dataset(21, 100, 2, 1.0)
        out = assign_borders(
            grid, np.zeros(100, bool), np.zeros(100, int), kernel="staged"
        )
        assert len(out) == 0 and out == {}

    def test_empty_grid(self):
        grid = Grid(np.empty((0, 2)), 1.0)
        out = assign_borders(
            grid, np.empty(0, bool), np.empty(0, int), kernel="staged"
        )
        assert len(out) == 0


class TestParallelOracle:
    @pytest.mark.parametrize("shm", [False, True])
    def test_workers_match_serial_loop(self, shm):
        grid, core, labels = _labeled(30, 1200, 2, 6.0, 5)
        ref_b = assign_borders(grid, core, labels, kernel="loop")
        cfg = ParallelConfig(workers=3, min_points=0, shm=shm)
        try:
            par_core = parallel_label_cores(grid, 5, cfg)
            par_b = parallel_assign_borders(grid, core, labels, cfg)
        finally:
            # Calling the executor directly makes us the grid's owner:
            # the published segment must not outlive the test.
            unpublish_grid(grid)
        assert np.array_equal(par_core, core)
        assert dict(par_b) == ref_b

    def test_workers_with_known_core_carry(self):
        grid_small = _dataset(31, 1000, 2, 4.0)
        known = label_cores(grid_small, 5, kernel="loop")
        grid = Grid(grid_small.points, 6.0)
        plain = label_cores(grid, 5, kernel="loop")
        cfg = ParallelConfig(workers=2, min_points=0)
        try:
            par = parallel_label_cores(grid, 5, cfg, known_core=known)
        finally:
            unpublish_grid(grid)
        assert np.array_equal(par, plain)


class TestBorderAssignments:
    def _sample(self):
        grid, core, labels = _labeled(40, 500, 2, 6.0, 5)
        return assign_borders_staged(grid, core, labels)

    def test_mapping_protocol(self):
        ba = self._sample()
        assert len(ba) > 0
        as_dict = dict(ba.items())
        assert dict(ba) == as_dict
        assert ba == as_dict and as_dict == dict(ba)
        assert sorted(ba) == sorted(as_dict)
        assert set(ba.keys()) == set(as_dict)
        assert list(ba.values()) == [as_dict[p] for p in ba.keys()]
        first = next(iter(ba))
        assert first in ba and ba.get(first) == as_dict[first]
        missing = max(as_dict) + 10_000
        assert missing not in ba
        assert ba.get(missing) is None and ba.get(missing, ()) == ()
        with pytest.raises(KeyError):
            ba[missing]

    def test_rows_are_sorted_unique(self):
        ba = self._sample()
        for _, cids in ba.items():
            assert list(cids) == sorted(set(cids))

    def test_pickle_roundtrip(self):
        ba = self._sample()
        clone = pickle.loads(pickle.dumps(ba))
        assert isinstance(clone, BorderAssignments)
        assert clone == ba and dict(clone.items()) == dict(ba.items())

    def test_checkpoint_flatten_roundtrip(self):
        from repro.runtime.checkpoint import _flatten_borders, _unflatten_borders

        ba = self._sample()
        assert _unflatten_borders(*_flatten_borders(ba)) == dict(ba.items())

    def test_empty(self):
        ba = BorderAssignments.empty()
        assert len(ba) == 0 and ba == {} and dict(ba) == {}


class TestKernelInternals:
    def test_core_funnel_partitions(self):
        grid = _dataset(50, 900, 2, 6.0)
        before = counters.snapshot()
        label_cores(grid, 5, kernel="staged")
        delta = counters.delta_since(before)
        assert delta["core_cells_total"] == len(grid.cells)
        assert delta["core_cells_total"] == (
            delta.get("core_dense_cells", 0) + delta.get("core_sparse_cells", 0)
        )
        assert delta["core_points_total"] == len(grid.points)
        assert delta["core_points_total"] == (
            delta.get("core_dense_points", 0)
            + delta.get("core_known_points", 0)
            + delta.get("core_counted_points", 0)
        )
        assert delta.get("core_retired_points", 0) <= delta.get(
            "core_counted_points", 0
        )

    def test_border_funnel_partitions_with_explicit_noise(self):
        grid, core, labels = _labeled(51, 900, 2, 6.0, 5)
        before = counters.snapshot()
        out = assign_borders(grid, core, labels, kernel="staged")
        delta = counters.delta_since(before)
        # The funnel partitions cleanly: every non-core point is either
        # assigned or an explicit noise verdict — including the points in
        # cells with zero candidate cores, which the loop skips silently.
        assert delta["border_points_total"] == int((~core).sum())
        assert delta["border_points_total"] == (
            delta.get("border_assigned", 0) + delta.get("border_noise", 0)
        )
        assert delta.get("border_no_candidates", 0) <= delta.get("border_noise", 0)
        assert delta.get("border_assigned", 0) == len(out)

    def test_zero_candidate_cells_counted_as_noise(self):
        # Two far-apart singletons plus one dense blob: the singletons'
        # cells have no candidate core anywhere in their neighbourhood.
        rng = np.random.default_rng(52)
        blob = rng.normal(50, 0.5, size=(30, 2))
        lonely = np.array([[0.0, 0.0], [100.0, 100.0]])
        grid = Grid(np.vstack([blob, lonely]), 3.0)
        core = label_cores(grid, 5, kernel="loop")
        assert core[:30].all() and not core[30:].any()
        labels, _ = cg.exact_components(grid, core)
        before = counters.snapshot()
        out = assign_borders(grid, core, labels, kernel="staged")
        delta = counters.delta_since(before)
        assert delta.get("border_no_candidates", 0) == 2
        assert delta["border_noise"] == 2
        assert out == assign_borders(grid, core, labels, kernel="loop")

    def test_grid_soa_is_cached_and_consistent(self):
        grid = _dataset(53, 400, 2, 6.0)
        soa = grid_soa(grid)
        assert grid_soa(grid) is soa
        assert int(soa.sizes.sum()) == len(grid.points)
        # The concatenation partitions the points in cell order.
        assert sorted(soa.cat.tolist()) == list(range(len(grid.points)))
        for t, (cell, idx) in enumerate(grid.cells.items()):
            start = soa.offsets[t]
            assert np.array_equal(soa.cat[start:start + soa.sizes[t]], idx)
            assert soa.index[cell] == t


class TestDeadline:
    """The staged kernels poll per batched tile, not per cell — a huge
    pass must still abort promptly when the clock skips past the budget."""

    TOLERANCE = 0.5
    SKEW = 1000.0

    def test_staged_labeling_aborts_promptly(self):
        grid = _dataset(60, 3000, 2, 2.0)
        start = time.perf_counter()
        with inject_faults(clock_skew=self.SKEW, skew_after=1):
            with pytest.raises(TimeoutExceeded):
                label_cores_staged(grid, 8, deadline=Deadline(5.0))
        assert time.perf_counter() - start < self.TOLERANCE

    def test_staged_borders_abort_promptly(self):
        grid, core, labels = _labeled(61, 3000, 2, 4.0, 5)
        start = time.perf_counter()
        with inject_faults(clock_skew=self.SKEW, skew_after=1):
            with pytest.raises(TimeoutExceeded):
                assign_borders_staged(grid, core, labels, deadline=Deadline(5.0))
        assert time.perf_counter() - start < self.TOLERANCE

    def test_tile_level_polls_fire_mid_stage(self):
        # Let the first few clock reads through so the abort comes from a
        # poll *inside* the size-class tile loop, not the entry check.
        grid = _dataset(62, 3000, 2, 2.0)
        with inject_faults(clock_skew=self.SKEW, skew_after=3) as plan:
            with pytest.raises(TimeoutExceeded):
                label_cores_staged(grid, 8, deadline=Deadline(5.0))
        assert plan.clock_reads > 3
