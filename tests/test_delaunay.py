"""Tests for the 2D Delaunay / Voronoi-NN substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import DataError
from repro.geometry.delaunay import Delaunay2D, VoronoiNN


def brute_nn(points, q):
    sq = ((points - q) ** 2).sum(axis=1)
    return float(sq.min())


class TestDelaunayConstruction:
    def test_rejects_bad_shape(self):
        with pytest.raises(DataError):
            Delaunay2D(np.zeros((3, 3)))
        with pytest.raises(DataError):
            Delaunay2D(np.empty((0, 2)))

    def test_triangle_count_euler(self):
        # For points in general position: T = 2n - 2 - h (h = hull size).
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 100, size=(40, 2))
        tri = Delaunay2D(pts)
        n = len(pts)
        t = len(tri.triangles)
        assert n - 2 <= t <= 2 * n - 5

    def test_empty_circumcircle_property(self):
        # The defining Delaunay property: no point strictly inside any
        # triangle's circumcircle.
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 50, size=(25, 2))
        tri = Delaunay2D(pts)
        for a, b, c in tri.triangles:
            center, r_sq = _circumcircle(pts[a], pts[b], pts[c])
            d_sq = ((pts - center) ** 2).sum(axis=1)
            inside = d_sq < r_sq * (1 - 1e-9)
            inside[[a, b, c]] = False
            assert not inside.any()

    def test_duplicates_collapsed(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [0.0, 0.0]])
        tri = Delaunay2D(pts)
        assert tri.alias[3] == 0
        assert tri.neighbors(3) == tri.neighbors(0)

    def test_collinear_has_no_triangles(self):
        pts = np.column_stack([np.arange(5, dtype=float), np.zeros(5)])
        tri = Delaunay2D(pts)
        assert tri.triangles == []

    def test_triangle_vertices_are_real(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 10, size=(15, 2))
        tri = Delaunay2D(pts)
        for t in tri.triangles:
            assert all(0 <= v < len(pts) for v in t)


def _circumcircle(a, b, c):
    ax, ay = a
    bx, by = b
    cx, cy = c
    d = 2 * (ax * (by - cy) + bx * (cy - ay) + cx * (ay - by))
    ux = ((ax**2 + ay**2) * (by - cy) + (bx**2 + by**2) * (cy - ay)
          + (cx**2 + cy**2) * (ay - by)) / d
    uy = ((ax**2 + ay**2) * (cx - bx) + (bx**2 + by**2) * (ax - cx)
          + (cx**2 + cy**2) * (bx - ax)) / d
    center = np.array([ux, uy])
    return center, float(((a - center) ** 2).sum())


class TestVoronoiNN:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_uniform(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 100, size=(60, 2))
        nn = VoronoiNN(pts)
        for _ in range(30):
            q = rng.uniform(-10, 110, size=2)
            _idx, sq = nn.nearest(q)
            assert sq == pytest.approx(brute_nn(pts, q), rel=1e-9)

    def test_matches_brute_clustered(self):
        rng = np.random.default_rng(9)
        pts = np.vstack([rng.normal(0, 1, (40, 2)), rng.normal(30, 1, (40, 2))])
        nn = VoronoiNN(pts)
        for q in rng.uniform(-5, 35, size=(25, 2)):
            _idx, sq = nn.nearest(q)
            assert sq == pytest.approx(brute_nn(pts, q), rel=1e-9)

    def test_query_at_data_point(self):
        pts = np.random.default_rng(3).uniform(0, 10, size=(20, 2))
        nn = VoronoiNN(pts)
        idx, sq = nn.nearest(pts[7])
        assert sq == pytest.approx(0.0, abs=1e-12)

    def test_single_point(self):
        nn = VoronoiNN(np.array([[5.0, 5.0]]))
        idx, sq = nn.nearest(np.array([6.0, 5.0]))
        assert idx == 0 and sq == pytest.approx(1.0)

    def test_two_points(self):
        nn = VoronoiNN(np.array([[0.0, 0.0], [10.0, 0.0]]))
        idx, _sq = nn.nearest(np.array([7.0, 0.0]))
        assert idx == 1

    def test_collinear_points(self):
        pts = np.column_stack([np.arange(10, dtype=float), np.zeros(10)])
        nn = VoronoiNN(pts)
        idx, sq = nn.nearest(np.array([6.4, 2.0]))
        assert idx == 6
        assert sq == pytest.approx(0.16 + 4.0)

    def test_nearest_within(self):
        pts = np.array([[0.0, 0.0], [5.0, 0.0], [9.0, 0.0]])
        nn = VoronoiNN(pts)
        assert nn.nearest_within(np.array([5.5, 0.0]), 1.0)
        assert not nn.nearest_within(np.array([2.5, 0.0]), 1.0)

    def test_duplicated_points(self):
        pts = np.vstack([np.zeros((5, 2)), [[1.0, 0.0]], [[0.0, 1.0]]])
        nn = VoronoiNN(pts)
        idx, sq = nn.nearest(np.array([0.1, 0.1]))
        assert sq == pytest.approx(0.02)


@settings(max_examples=60, deadline=None)
@given(
    pts=arrays(np.float64, st.tuples(st.integers(1, 30), st.just(2)),
               elements=st.floats(-50, 50)),
    q=arrays(np.float64, (2,), elements=st.floats(-60, 60)),
)
def test_property_voronoi_nn_matches_brute(pts, q):
    nn = VoronoiNN(pts)
    _idx, sq = nn.nearest(q)
    assert sq == pytest.approx(brute_nn(pts, q), rel=1e-6, abs=1e-9)
