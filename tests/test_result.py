"""Tests for the Clustering result model (Problem 1/2 semantics)."""

import numpy as np
import pytest

from repro.core.result import NOISE, Clustering, build_clustering
from repro.errors import AlgorithmError


def make(n, clusters, cores):
    mask = np.zeros(n, dtype=bool)
    mask[list(cores)] = True
    return Clustering(n, clusters, mask)


class TestConstruction:
    def test_canonical_order_by_min_member(self):
        c = make(6, [{4, 5}, {0, 1}], cores={0, 4})
        assert c.clusters == (frozenset({0, 1}), frozenset({4, 5}))

    def test_labels_primary(self):
        c = make(6, [{4, 5}, {0, 1}], cores={0, 4})
        assert c.labels.tolist() == [0, 0, NOISE, NOISE, 1, 1]

    def test_empty_cluster_rejected(self):
        with pytest.raises(AlgorithmError):
            make(3, [set()], cores=set())

    def test_out_of_range_member_rejected(self):
        with pytest.raises(AlgorithmError):
            make(3, [{5}], cores=set())

    def test_core_in_two_clusters_rejected(self):
        with pytest.raises(AlgorithmError):
            make(4, [{0, 1}, {1, 2}], cores={1})

    def test_border_in_two_clusters_allowed(self):
        # The paper's o10: a border point shared by two clusters.
        c = make(5, [{0, 2}, {2, 4}], cores={0, 4})
        assert c.memberships_of(2) == (0, 1)
        assert c.labels[2] == 0  # primary label = smallest cluster id

    def test_no_clusters(self):
        c = make(3, [], cores=set())
        assert c.n_clusters == 0
        assert c.noise_mask.all()

    def test_bad_core_mask_shape(self):
        with pytest.raises(AlgorithmError):
            Clustering(3, [{0}], np.zeros(4, dtype=bool))


class TestMasks:
    def test_border_mask(self):
        c = make(4, [{0, 1}], cores={0})
        assert c.border_mask.tolist() == [False, True, False, False]

    def test_noise_mask(self):
        c = make(4, [{0, 1}], cores={0})
        assert c.noise_mask.tolist() == [False, False, True, True]

    def test_cluster_sizes(self):
        c = make(6, [{0, 1, 2}, {4, 5}], cores={0, 4})
        assert c.cluster_sizes() == [3, 2]

    def test_core_points_of(self):
        c = make(4, [{0, 1, 2}], cores={0, 2})
        assert c.core_points_of(0) == frozenset({0, 2})

    def test_memberships_of_noise(self):
        c = make(3, [{0}], cores={0})
        assert c.memberships_of(2) == ()


class TestComparison:
    def test_same_clusters_ignores_construction_order(self):
        a = make(4, [{0, 1}, {2, 3}], cores={0, 2})
        b = make(4, [{2, 3}, {0, 1}], cores={0, 2})
        assert a.same_clusters(b)
        assert a == b

    def test_different_membership_not_equal(self):
        a = make(4, [{0, 1}], cores={0})
        b = make(4, [{0, 1, 2}], cores={0})
        assert not a.same_clusters(b)

    def test_eq_requires_same_core_mask(self):
        a = make(4, [{0, 1}], cores={0})
        b = make(4, [{0, 1}], cores={0, 1})
        assert a.same_clusters(b)
        assert a != b

    def test_hashable(self):
        a = make(4, [{0, 1}], cores={0})
        b = make(4, [{0, 1}], cores={0})
        assert len({a, b}) == 1

    def test_eq_other_type(self):
        assert make(2, [], set()).__eq__(42) is NotImplemented


class TestReprSummary:
    def test_repr_mentions_algorithm(self):
        c = Clustering(3, [{0}], np.array([True, False, False]), meta={"algorithm": "x"})
        assert "x" in repr(c)

    def test_summary_counts(self):
        c = make(5, [{0, 1}], cores={0})
        s = c.summary()
        assert "1 cluster" in s and "3 noise" in s and "1 border" in s


class TestBuildClustering:
    def test_assembles_cores_and_borders(self):
        core_mask = np.array([True, True, False, False])
        core_labels = np.array([0, 1, -1, -1])
        borders = {2: (0, 1)}
        c = build_clustering(4, core_mask, core_labels, borders)
        assert c.n_clusters == 2
        assert c.memberships_of(2) == (0, 1)
        assert c.labels[3] == NOISE

    def test_no_cores(self):
        c = build_clustering(3, np.zeros(3, dtype=bool), np.full(3, -1), {})
        assert c.n_clusters == 0

    def test_meta_preserved(self):
        c = build_clustering(
            1, np.array([True]), np.array([0]), {}, meta={"algorithm": "t"}
        )
        assert c.meta["algorithm"] == "t"
