"""End-to-end tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.data import io as data_io


@pytest.fixture()
def dataset(tmp_path):
    rng = np.random.default_rng(0)
    pts = np.vstack([
        rng.normal(10_000, 300, size=(80, 2)),
        rng.normal(60_000, 300, size=(80, 2)),
    ])
    path = str(tmp_path / "data.npy")
    data_io.save_points(pts, path)
    return path


class TestGenerate:
    @pytest.mark.parametrize("kind", ["ss", "moons", "rings", "snakes"])
    def test_generate_kinds(self, tmp_path, kind, capsys):
        out = str(tmp_path / f"{kind}.npy")
        assert main(["generate", kind, out, "-n", "300", "--seed", "1"]) == 0
        pts = data_io.load_points(out)
        assert len(pts) == 300
        assert "wrote" in capsys.readouterr().out

    def test_generate_real_like(self, tmp_path):
        out = str(tmp_path / "pamap2.csv")
        assert main(["generate", "pamap2", out, "-n", "200", "--seed", "2"]) == 0
        assert data_io.load_points(out).shape == (200, 4)

    def test_generate_ss_dimension(self, tmp_path):
        out = str(tmp_path / "ss5.npy")
        assert main(["generate", "ss", out, "-n", "200", "-d", "5"]) == 0
        assert data_io.load_points(out).shape[1] == 5


class TestCluster:
    def test_cluster_approx(self, dataset, capsys):
        assert main(["cluster", dataset, "--eps", "2000", "--min-pts", "5"]) == 0
        assert "cluster(s)" in capsys.readouterr().out

    @pytest.mark.parametrize("algo", ["grid", "brute", "kdd96", "cit08"])
    def test_cluster_exact_algorithms(self, dataset, algo, capsys):
        code = main([
            "cluster", dataset, "--eps", "2000", "--min-pts", "5",
            "--algorithm", algo,
        ])
        assert code == 0
        assert "2 cluster(s)" in capsys.readouterr().out

    def test_labels_out(self, dataset, tmp_path):
        labels_path = str(tmp_path / "labels.txt")
        main([
            "cluster", dataset, "--eps", "2000", "--min-pts", "5",
            "--labels-out", labels_path,
        ])
        labels = np.loadtxt(labels_path)
        assert len(labels) == 160

    def test_missing_file_error(self, capsys):
        code = main(["cluster", "/nope.npy", "--eps", "1"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestCompare:
    def test_compare_same(self, dataset, capsys):
        code = main(["compare", dataset, "--eps", "2000", "--min-pts", "5"])
        assert code == 0
        assert "SAME" in capsys.readouterr().out


class TestLegalRhoAndCollapse:
    def test_legal_rho(self, dataset, capsys):
        code = main(["legal-rho", dataset, "--eps", "2000", "--min-pts", "5"])
        assert code == 0
        assert "maximum legal rho" in capsys.readouterr().out

    def test_collapse(self, dataset, capsys):
        code = main(["collapse", dataset, "--min-pts", "5", "--lo", "500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "collapsing radius" in out
