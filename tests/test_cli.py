"""End-to-end tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import EXIT_BUDGET, EXIT_CONFIG, EXIT_DATA, EXIT_POOL, main
from repro.data import io as data_io


@pytest.fixture()
def dataset(tmp_path):
    rng = np.random.default_rng(0)
    pts = np.vstack([
        rng.normal(10_000, 300, size=(80, 2)),
        rng.normal(60_000, 300, size=(80, 2)),
    ])
    path = str(tmp_path / "data.npy")
    data_io.save_points(pts, path)
    return path


class TestGenerate:
    @pytest.mark.parametrize("kind", ["ss", "moons", "rings", "snakes"])
    def test_generate_kinds(self, tmp_path, kind, capsys):
        out = str(tmp_path / f"{kind}.npy")
        assert main(["generate", kind, out, "-n", "300", "--seed", "1"]) == 0
        pts = data_io.load_points(out)
        assert len(pts) == 300
        assert "wrote" in capsys.readouterr().out

    def test_generate_real_like(self, tmp_path):
        out = str(tmp_path / "pamap2.csv")
        assert main(["generate", "pamap2", out, "-n", "200", "--seed", "2"]) == 0
        assert data_io.load_points(out).shape == (200, 4)

    def test_generate_ss_dimension(self, tmp_path):
        out = str(tmp_path / "ss5.npy")
        assert main(["generate", "ss", out, "-n", "200", "-d", "5"]) == 0
        assert data_io.load_points(out).shape[1] == 5


class TestCluster:
    def test_cluster_approx(self, dataset, capsys):
        assert main(["cluster", dataset, "--eps", "2000", "--min-pts", "5"]) == 0
        assert "cluster(s)" in capsys.readouterr().out

    @pytest.mark.parametrize("algo", ["grid", "brute", "kdd96", "cit08"])
    def test_cluster_exact_algorithms(self, dataset, algo, capsys):
        code = main([
            "cluster", dataset, "--eps", "2000", "--min-pts", "5",
            "--algorithm", algo,
        ])
        assert code == 0
        assert "2 cluster(s)" in capsys.readouterr().out

    def test_labels_out(self, dataset, tmp_path):
        labels_path = str(tmp_path / "labels.txt")
        main([
            "cluster", dataset, "--eps", "2000", "--min-pts", "5",
            "--labels-out", labels_path,
        ])
        labels = np.loadtxt(labels_path)
        assert len(labels) == 160

    def test_missing_file_error(self, capsys):
        code = main(["cluster", "/nope.npy", "--eps", "1"])
        assert code == EXIT_DATA
        assert "error" in capsys.readouterr().err


class TestEngineAndProfileFlags:
    def test_engine_cache_run(self, dataset, capsys):
        code = main([
            "cluster", dataset, "--eps", "2000", "--min-pts", "5",
            "--algorithm", "grid", "--engine-cache",
        ])
        assert code == 0
        assert "cluster(s)" in capsys.readouterr().out

    def test_profile_prints_phase_table(self, dataset, capsys):
        code = main([
            "cluster", dataset, "--eps", "2000", "--min-pts", "5",
            "--algorithm", "grid", "--profile",
        ])
        assert code == 0
        out = capsys.readouterr().out
        for phase in ("grid", "cores", "components", "borders", "total"):
            assert phase in out
        assert "share" in out

    def test_profile_with_engine_cache_shows_stats(self, dataset, capsys):
        code = main([
            "cluster", dataset, "--eps", "2000", "--min-pts", "5",
            "--algorithm", "grid", "--engine-cache", "--profile",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cache hits" in out
        assert "cache misses" in out

    def test_profile_without_grid_pipeline(self, dataset, capsys):
        code = main([
            "cluster", dataset, "--eps", "2000", "--min-pts", "5",
            "--algorithm", "kdd96", "--profile",
        ])
        assert code == 0
        assert "no phase profile" in capsys.readouterr().out

    def test_engine_cache_resilience_conflict_is_3(self, dataset, capsys):
        code = main([
            "cluster", dataset, "--eps", "2000", "--min-pts", "5",
            "--engine-cache", "--resilience",
        ])
        assert code == EXIT_CONFIG
        assert "engine-cache" in capsys.readouterr().err


class TestExitCodes:
    """Each failure class maps to its own documented exit code."""

    def test_config_error_is_3(self, dataset, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
        code = main(["cluster", dataset, "--eps", "2000", "--min-pts", "5"])
        assert code == EXIT_CONFIG == 3
        assert "REPRO_WORKERS" in capsys.readouterr().err

    def test_bad_chunk_budget_fails_fast(self, dataset, monkeypatch, capsys):
        # The budget is only consumed inside the chunked kernels, which
        # small workloads may never reach — the CLI still validates it up
        # front so a malformed value cannot ride along silently.
        monkeypatch.setenv("REPRO_CHUNK_BUDGET", "bogus")
        code = main(["cluster", dataset, "--eps", "2000", "--min-pts", "5"])
        assert code == EXIT_CONFIG == 3
        assert "REPRO_CHUNK_BUDGET" in capsys.readouterr().err

    def test_data_error_is_4(self, tmp_path, capsys):
        path = str(tmp_path / "dirty.csv")
        with open(path, "w") as fh:
            fh.write("1.0,2.0\n3.0,nan\n4.0,5.0\n")
        code = main(["cluster", path, "--eps", "1", "--min-pts", "2"])
        assert code == EXIT_DATA == 4
        assert "non-finite" in capsys.readouterr().err

    def test_bad_rows_drop_recovers(self, tmp_path):
        path = str(tmp_path / "dirty.csv")
        rng = np.random.default_rng(0)
        pts = rng.normal(10_000, 300, size=(40, 2))
        data_io.save_points(pts, path)
        with open(path, "a") as fh:
            fh.write("3.0,nan\n")
        code = main([
            "cluster", path, "--on-bad-rows", "drop",
            "--eps", "2000", "--min-pts", "5",
        ])
        assert code == 0

    def test_budget_error_is_5(self, dataset, capsys):
        code = main([
            "cluster", dataset, "--eps", "2000", "--min-pts", "5",
            "--time-budget", "0.000001",
        ])
        assert code == EXIT_BUDGET == 5
        assert "budget" in capsys.readouterr().err

    def test_worker_pool_error_is_6(self, dataset, monkeypatch, capsys):
        from repro.runtime.faultinject import inject_faults

        monkeypatch.setenv("REPRO_PARALLEL_MIN_POINTS", "0")
        with inject_faults(poison_shards=[("cores", 0)]):
            code = main([
                "cluster", dataset, "--eps", "2000", "--min-pts", "5",
                "--algorithm", "grid", "--workers", "2",
                "--max-shard-retries", "0", "--no-quarantine",
            ])
        assert code == EXIT_POOL == 6
        assert "worker pool" in capsys.readouterr().err

    def test_supervisor_flags_accept_clean_run(self, dataset, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_MIN_POINTS", "0")
        code = main([
            "cluster", dataset, "--eps", "2000", "--min-pts", "5",
            "--algorithm", "grid", "--workers", "2",
            "--max-shard-retries", "1", "--shard-timeout", "60",
        ])
        assert code == 0


class TestCompare:
    def test_compare_same(self, dataset, capsys):
        code = main(["compare", dataset, "--eps", "2000", "--min-pts", "5"])
        assert code == 0
        assert "SAME" in capsys.readouterr().out


class TestLegalRhoAndCollapse:
    def test_legal_rho(self, dataset, capsys):
        code = main(["legal-rho", dataset, "--eps", "2000", "--min-pts", "5"])
        assert code == 0
        assert "maximum legal rho" in capsys.readouterr().out

    def test_collapse(self, dataset, capsys):
        code = main(["collapse", dataset, "--min-pts", "5", "--lo", "500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "collapsing radius" in out
