"""Edge cases across modules that the focused suites do not reach."""

import numpy as np
import pytest

from repro import approx_dbscan, dbscan
from repro.data.seed_spreader import seed_spreader
from repro.errors import DataError, ParameterError
from repro.grid.cells import Grid
from repro.grid.hierarchy import CountingHierarchy
from repro.index.kdtree import KDTree


class TestOneDimensional:
    """d = 1 exercises every generic-d code path at its minimum."""

    def test_exact_and_approx_agree(self):
        pts = np.concatenate([
            np.linspace(0, 1, 30), np.linspace(10, 11, 30)
        ]).reshape(-1, 1)
        exact = dbscan(pts, 0.2, 3, algorithm="brute")
        grid = dbscan(pts, 0.2, 3)
        approx = approx_dbscan(pts, 0.2, 3, rho=0.001)
        assert grid.same_clusters(exact)
        assert approx.same_clusters(exact)
        assert exact.n_clusters == 2

    def test_hierarchy_1d(self):
        pts = np.linspace(0, 10, 50).reshape(-1, 1)
        structure = CountingHierarchy(pts, 1.0, 0.01)
        ans = structure.count(np.array([5.0]))
        exact = int((np.abs(pts[:, 0] - 5.0) <= 1.0).sum())
        outer = int((np.abs(pts[:, 0] - 5.0) <= 1.01).sum())
        assert exact <= ans <= outer


class TestHighDimensional:
    def test_6d_equivalence(self):
        rng = np.random.default_rng(0)
        pts = np.vstack([
            rng.normal(0, 1, (50, 6)),
            rng.normal(15, 1, (50, 6)),
        ])
        exact = dbscan(pts, 4.0, 5, algorithm="brute")
        assert dbscan(pts, 4.0, 5).same_clusters(exact)
        assert approx_dbscan(pts, 4.0, 5, rho=0.01).same_clusters(exact)


class TestDegenerateGeometry:
    def test_points_on_a_grid_lattice(self):
        # Many exact boundary distances at once.
        xs, ys = np.meshgrid(np.arange(8, dtype=float), np.arange(8, dtype=float))
        pts = np.column_stack([xs.ravel(), ys.ravel()])
        exact = dbscan(pts, 1.0, 4, algorithm="brute")
        assert dbscan(pts, 1.0, 4).same_clusters(exact)
        assert exact.n_clusters == 1

    def test_single_coordinate_varies(self):
        pts = np.zeros((40, 3))
        pts[:, 1] = np.arange(40) * 0.5
        exact = dbscan(pts, 0.6, 3, algorithm="brute")
        assert dbscan(pts, 0.6, 3).same_clusters(exact)

    def test_two_identical_heavy_clusters(self):
        pts = np.vstack([np.zeros((100, 2)), np.full((100, 2), 3.0)])
        result = approx_dbscan(pts, 1.0, 50, rho=0.001)
        assert result.n_clusters == 2
        assert result.core_mask.all()


class TestParameterExtremes:
    def test_huge_min_pts(self):
        pts = np.random.default_rng(1).uniform(0, 10, (50, 2))
        result = dbscan(pts, 2.0, 10_000)
        assert result.n_clusters == 0
        assert result.noise_mask.all()

    def test_tiny_eps(self):
        pts = np.random.default_rng(2).uniform(0, 10, (50, 2))
        result = dbscan(pts, 1e-12, 2)
        assert result.n_clusters == 0

    def test_huge_eps_single_cluster(self):
        pts = np.random.default_rng(3).uniform(0, 10, (50, 2))
        result = approx_dbscan(pts, 1e6, 2, rho=0.001)
        assert result.n_clusters == 1

    def test_rho_larger_than_one(self):
        pts = np.random.default_rng(4).uniform(0, 10, (60, 2))
        result = approx_dbscan(pts, 1.0, 3, rho=5.0)
        assert result.n >= 1  # legal; single-level hierarchy


class TestGridEdges:
    def test_grid_single_cell(self):
        grid = Grid(np.zeros((10, 2)), eps=5.0)
        assert len(grid) == 1
        assert list(grid.neighbor_cells(grid.cell_of(0))) == []

    def test_grid_points_on_cell_boundaries(self):
        # Points exactly on cell boundaries must land in exactly one cell.
        side = 1.0 / np.sqrt(2)
        pts = np.array([[0.0, 0.0], [side, 0.0], [2 * side, 0.0]])
        grid = Grid(pts, eps=1.0)
        total = sum(len(idx) for idx in grid.cells.values())
        assert total == 3

    def test_kdtree_leaf_size_one_deep_tree(self):
        pts = np.random.default_rng(5).uniform(0, 100, (128, 2))
        tree = KDTree(pts, leaf_size=1)
        q = pts[64]
        idx, sq = tree.nearest(q)
        assert sq == pytest.approx(0.0)


class TestSeedSpreaderCustoms:
    def test_custom_domain(self):
        ds = seed_spreader(500, 2, domain=1000.0, noise_fraction=0.1, seed=6)
        noise = ds.points[ds.restart_ids == -1]
        assert (noise >= 0).all() and (noise <= 1000.0).all()

    def test_restart_probability_one_all_singletons(self):
        ds = seed_spreader(50, 2, restart_probability=1.0, noise_fraction=0.0, seed=7)
        assert ds.n_restarts == 50

    def test_zero_noise(self):
        ds = seed_spreader(300, 3, noise_fraction=0.0, seed=8)
        assert ds.n_noise == 0
        assert (ds.restart_ids >= 0).all()


class TestAPIMisc:
    def test_points_list_of_lists_1d_entries(self):
        result = dbscan([[0.0], [0.1], [5.0]], 0.5, 2)
        assert result.n == 3

    def test_non_contiguous_array(self):
        base = np.random.default_rng(9).uniform(0, 10, (100, 4))
        view = base[::2, ::2]  # non-contiguous view
        result = dbscan(view, 2.0, 3)
        assert result.n == 50

    def test_float32_input_upcast(self):
        pts = np.random.default_rng(10).uniform(0, 10, (60, 2)).astype(np.float32)
        result = dbscan(pts, 2.0, 3)
        assert result.n == 60
