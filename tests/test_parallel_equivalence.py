"""Differential oracle for the sharded parallel pipeline.

The parallel executor promises *identical* output to the serial run — not
merely permutation-equivalent clusters but the very same label array (the
stitching forest registers core cells in the serial insertion order, so
``component_labels()`` assigns the same first-appearance ids).  This suite
holds it to that promise on randomized seed-spreader data (d in {2, 3, 5}),
2-D shape datasets, several eps values including near-collapse radii, and
worker counts {1, 2, 4} — and cross-checks everything against the O(n^2)
brute-force oracle, border-point tie-breaking included.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.approx import approx_dbscan
from repro.algorithms.brute import brute_dbscan
from repro.api import dbscan
from repro.data.seed_spreader import seed_spreader
from repro.data.shapes import rings, two_moons
from repro.errors import ParameterError, TimeoutExceeded
from repro.parallel import ParallelConfig, shard_cells, split_pairs
from repro.parallel import worker as worker_mod
from repro.parallel.executor import as_parallel_config, effective_workers
from repro.runtime.deadline import Deadline

#: Force the pool even on tiny inputs — the whole point is to exercise it.
def forced(workers: int) -> ParallelConfig:
    return ParallelConfig(workers=workers, min_points=0)


#: name -> (points, eps values to test).  Seed-spreader datasets use the
#: paper's generator (vicinity radius 100 on [0, 1e5]^d); the largest eps
#: per dataset is near the collapsing regime where clusters merge.
def _datasets():
    out = {}
    for d, seed in ((2, 31), (3, 32), (5, 33)):
        ds = seed_spreader(400, d, seed=seed)
        out[f"ss{d}d"] = (ds.points, (150.0, 2000.0, 25000.0))
    moons, _ = two_moons(300, noise=0.06, seed=34)
    out["moons"] = (moons, (0.12, 0.3))
    ring_pts, _ = rings(300, noise=0.05, seed=35)
    out["rings"] = (ring_pts, (0.15, 0.5))
    return out


DATASETS = _datasets()
CASES = [(name, eps) for name, (_, epss) in DATASETS.items() for eps in epss]


def _ids(case):
    name, eps = case
    return f"{name}-eps{eps:g}"


def assert_identical(serial, parallel, name):
    """Byte-identical labeling: labels, core mask, and memberships."""
    assert np.array_equal(serial.labels, parallel.labels), f"{name}: labels differ"
    assert np.array_equal(serial.core_mask, parallel.core_mask), f"{name}: core mask differs"
    border = np.flatnonzero(serial.border_mask)
    for idx in border:
        assert serial.memberships_of(int(idx)) == parallel.memberships_of(int(idx)), (
            f"{name}: border point {idx} has different memberships "
            "(tie-breaking across clusters drifted)"
        )


class TestExactDifferentialOracle:
    @pytest.mark.parametrize("case", CASES, ids=_ids)
    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_matches_serial_and_brute(self, case, workers):
        name, eps = case
        pts, _ = DATASETS[name]
        min_pts = 10
        serial = dbscan(pts, eps, min_pts, workers=1)
        par = dbscan(pts, eps, min_pts, workers=forced(workers))
        assert par.meta["workers"] == min(workers, par.meta["grid_cells"])
        assert_identical(serial, par, f"{name} w={workers}")
        reference = brute_dbscan(pts, eps, min_pts)
        assert par.same_clusters(reference), (
            f"{name} w={workers}: parallel grid disagrees with brute force"
        )
        assert np.array_equal(par.core_mask, reference.core_mask)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_gunawan2d_parallel(self, workers):
        pts, _ = DATASETS["moons"]
        serial = dbscan(pts, 0.12, 10, algorithm="gunawan2d", workers=1)
        par = dbscan(pts, 0.12, 10, algorithm="gunawan2d", workers=forced(workers))
        assert_identical(serial, par, f"gunawan2d w={workers}")

    def test_border_tie_breaking(self):
        # A point exactly within eps of core points of *two* clusters: its
        # primary label and its multi-membership tuple must survive
        # parallelisation bit-for-bit.
        left = np.array(
            [[0.0, 0.0], [0.1, 0.0], [0.0, 0.1], [0.1, 0.1], [0.05, 0.05], [0.2, 0.0]]
        )
        right = np.array([2.4, 0.0]) - left  # mirrored blob, tips 2.0 apart
        bridge = np.array([[1.2, 0.0]])  # exactly eps from one core of each blob
        pts = np.vstack([left, right, bridge])
        serial = dbscan(pts, 1.0, 6, workers=1)
        par = dbscan(pts, 1.0, 6, workers=forced(2))
        assert serial.n_clusters == 2
        bridge_idx = len(pts) - 1
        assert not serial.core_mask[bridge_idx]
        assert len(serial.memberships_of(bridge_idx)) == 2
        assert_identical(serial, par, "bridge")


class TestApproxDifferentialOracle:
    @pytest.mark.parametrize("case", CASES[:6], ids=_ids)
    @pytest.mark.parametrize("rho", [0.001, 0.1])
    def test_parallel_matches_serial(self, case, rho):
        name, eps = case
        pts, _ = DATASETS[name]
        serial = approx_dbscan(pts, eps, 10, rho=rho, workers=1)
        for workers in (2, 4):
            par = approx_dbscan(pts, eps, 10, rho=rho, workers=forced(workers))
            assert_identical(serial, par, f"approx {name} rho={rho} w={workers}")


class TestSerialFallback:
    def test_small_input_falls_back(self):
        pts, (eps, *_rest) = DATASETS["ss3d"]
        # Default min_points (4096) exceeds n=400: the pool must not spawn.
        result = dbscan(pts, eps, 10, workers=4)
        assert result.meta["workers"] == 1
        assert np.array_equal(result.labels, dbscan(pts, eps, 10, workers=1).labels)

    def test_effective_workers(self):
        cfg = ParallelConfig(workers=4, min_points=100)
        assert effective_workers(None, 10**6, 10**5) == 1
        assert effective_workers(cfg, 50, 40) == 1       # below min_points
        assert effective_workers(cfg, 500, 2) == 2       # fewer cells than workers
        assert effective_workers(cfg, 500, 40) == 4

    def test_as_parallel_config(self):
        assert as_parallel_config(1) is None
        assert as_parallel_config(ParallelConfig(workers=1)) is None
        assert as_parallel_config(3).workers == 3
        cfg = ParallelConfig(workers=2, chunk_pairs=7)
        assert as_parallel_config(cfg) is cfg
        with pytest.raises(ParameterError):
            as_parallel_config(0)
        with pytest.raises(ParameterError):
            ParallelConfig(workers=0)

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert as_parallel_config(None).workers == 2
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert as_parallel_config(None) is None

    def test_unsupported_algorithm_guard(self, monkeypatch):
        pts, (eps, *_rest) = DATASETS["ss2d"]
        with pytest.raises(ParameterError):
            dbscan(pts, eps, 10, algorithm="brute", workers=2)
        # The env default must NOT poison non-grid algorithms.
        monkeypatch.setenv("REPRO_WORKERS", "2")
        result = dbscan(pts[:80], eps, 10, algorithm="brute")
        assert result.n >= 0  # ran without raising


class TestShardHelpers:
    def test_shards_partition_cells(self):
        cells = [(i, j) for i in range(7) for j in range(5)]
        weights = {c: 1 + (c[0] * c[1]) % 3 for c in cells}
        shards = shard_cells(cells, 4, weights)
        assert len(shards) <= 4
        flat = [c for shard in shards for c in shard]
        assert sorted(flat) == sorted(cells)          # exact partition
        assert flat == sorted(cells)                  # contiguous in sort order
        assert all(shard for shard in shards)         # no empty shard

    def test_more_shards_than_cells(self):
        cells = [(0, 0), (0, 1)]
        shards = shard_cells(cells, 8, {c: 1 for c in cells})
        assert [c for s in shards for c in s] == sorted(cells)

    def test_split_pairs_preserves_orientation(self):
        owner = {(0, 0): 0, (0, 1): 0, (5, 5): 1}
        pairs = [((0, 0), (0, 1)), ((5, 5), (0, 1)), ((0, 1), (5, 5))]
        intra, boundary = split_pairs(pairs, owner, 2)
        assert intra[0] == [((0, 0), (0, 1))]
        assert intra[1] == []
        # Boundary pairs keep their original orientation — the approximate
        # edge predicate is direction-sensitive in the don't-care zone.
        assert boundary == [((5, 5), (0, 1)), ((0, 1), (5, 5))]


class TestWorkerGuards:
    def test_worker_deadline_trips(self):
        pts = np.random.default_rng(0).normal(0, 2, size=(300, 2))
        from repro.grid.cells import Grid

        grid = Grid(pts, 1.0)
        worker_mod.init_worker(
            {
                "grid": grid,
                "phase": "cores",
                "time_remaining": 1e-9,
                "memory_limit_mb": None,
                "min_pts": 5,
            }
        )
        try:
            with pytest.raises(TimeoutExceeded):
                worker_mod.cores_task(list(grid.cells.keys()))
        finally:
            worker_mod._CTX = None

    def test_pool_propagates_timeout(self):
        pts = np.random.default_rng(1).normal(0, 3, size=(500, 3))
        from repro.algorithms.exact_grid import exact_grid_dbscan

        with pytest.raises(TimeoutExceeded):
            exact_grid_dbscan(
                pts, 1.0, 6, deadline=Deadline(1e-9), workers=forced(2)
            )

    def test_uninitialised_worker_errors(self):
        assert worker_mod._CTX is None
        with pytest.raises(RuntimeError):
            worker_mod.cores_task([])
