"""Tests for rho-approximate DBSCAN (Theorem 4) and the sandwich theorem
(Theorem 3) — including hypothesis property tests.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.algorithms.approx import approx_dbscan
from repro.algorithms.brute import brute_dbscan
from repro.algorithms.exact_grid import exact_grid_dbscan
from repro.evaluation.compare import clusters_contained_in, sandwich_holds

from .conftest import make_blobs


def assert_sandwich(points, eps, min_pts, rho, **kwargs):
    approx = approx_dbscan(points, eps, min_pts, rho=rho, **kwargs)
    exact = brute_dbscan(points, eps, min_pts)
    inflated = brute_dbscan(points, eps * (1 + rho), min_pts)
    # Statement 1: every exact cluster inside an approximate cluster.
    assert clusters_contained_in(exact, approx), "sandwich statement 1 violated"
    # Statement 2: every approximate cluster inside an inflated-exact cluster.
    assert clusters_contained_in(approx, inflated), "sandwich statement 2 violated"
    return approx, exact, inflated


class TestBasics:
    def test_core_mask_is_exact(self):
        # Definition 1 is unchanged: core status must match exact DBSCAN.
        pts = make_blobs(200, 3, 3, spread=1.0, domain=40.0, seed=0)
        approx = approx_dbscan(pts, 2.5, 5, rho=0.1)
        exact = brute_dbscan(pts, 2.5, 5)
        assert (approx.core_mask == exact.core_mask).all()

    def test_every_core_point_in_exactly_one_cluster(self):
        # Problem 2's requirement.
        pts = make_blobs(150, 2, 3, spread=1.2, domain=30.0, seed=1)
        approx = approx_dbscan(pts, 2.0, 4, rho=0.05)
        counts = {i: 0 for i in np.nonzero(approx.core_mask)[0]}
        for cluster in approx.clusters:
            for i in cluster:
                if approx.core_mask[i]:
                    counts[i] += 1
        assert all(v == 1 for v in counts.values())

    def test_tiny_rho_matches_exact_on_separated_data(self):
        rng = np.random.default_rng(2)
        pts = np.vstack([
            rng.normal(0, 0.5, size=(60, 3)),
            rng.normal(25, 0.5, size=(60, 3)),
        ])
        approx = approx_dbscan(pts, 2.0, 5, rho=0.001)
        exact = brute_dbscan(pts, 2.0, 5)
        assert approx.same_clusters(exact)

    def test_huge_rho_merges_everything_reachable(self):
        # With enormous rho the approximate result may merge clusters, but
        # the sandwich must still hold.
        pts = make_blobs(150, 2, 3, spread=1.0, domain=25.0, seed=3)
        assert_sandwich(pts, 2.0, 4, rho=2.0)

    def test_meta_records_parameters(self):
        pts = np.zeros((5, 2))
        res = approx_dbscan(pts, 1.0, 2, rho=0.01)
        assert res.meta["algorithm"] == "approx"
        assert res.meta["rho"] == 0.01

    def test_invalid_rho_rejected(self):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            approx_dbscan(np.zeros((3, 2)), 1.0, 2, rho=0.0)


class TestSandwichStructured:
    @pytest.mark.parametrize("rho", [0.001, 0.01, 0.1, 0.5])
    def test_rho_sweep(self, rho):
        pts = make_blobs(160, 3, 3, spread=1.3, domain=30.0, seed=4)
        assert_sandwich(pts, 2.2, 5, rho=rho)

    @pytest.mark.parametrize("d", [1, 2, 3, 5])
    def test_dimensions(self, d):
        pts = make_blobs(140, d, 2, spread=1.0, domain=25.0, seed=5 + d)
        assert_sandwich(pts, 2.5, 4, rho=0.05)

    @pytest.mark.parametrize("exact_leaf_size", [0, 1, 8])
    def test_leaf_size_variants(self, exact_leaf_size):
        pts = make_blobs(130, 2, 3, spread=1.0, domain=25.0, seed=6)
        assert_sandwich(pts, 2.0, 4, rho=0.05, exact_leaf_size=exact_leaf_size)

    def test_adversarial_annulus(self):
        # Points placed in the (eps, eps(1+rho)] annulus around a blob:
        # "don't care" territory where approximation decisions actually vary.
        rng = np.random.default_rng(7)
        blob = rng.normal(0, 0.3, size=(50, 2))
        ring_angles = rng.uniform(0, 2 * np.pi, size=30)
        radii = rng.uniform(2.0, 2.2, size=30)  # eps = 2, rho = 0.1
        ring = np.column_stack([radii * np.cos(ring_angles), radii * np.sin(ring_angles)])
        far_blob = rng.normal(3.5, 0.3, size=(50, 2))
        pts = np.vstack([blob, ring, far_blob])
        assert_sandwich(pts, 2.0, 5, rho=0.1)

    def test_coincident_points(self):
        pts = np.ones((40, 3))
        approx, exact, _ = assert_sandwich(pts, 1.0, 5, rho=0.01)
        assert approx.same_clusters(exact)

    def test_min_pts_one(self):
        pts = make_blobs(100, 2, 2, spread=1.0, domain=20.0, seed=8)
        assert_sandwich(pts, 1.5, 1, rho=0.1)


class TestApproxVsExactCount:
    def test_cluster_count_between_slices(self):
        # #clusters(exact eps) >= #clusters(approx) >= #clusters(exact inflated)
        # restricted to clusters containing core points (always true here).
        pts = make_blobs(200, 2, 5, spread=1.5, domain=30.0, seed=9)
        eps, min_pts, rho = 2.0, 4, 0.3
        approx = approx_dbscan(pts, eps, min_pts, rho=rho)
        exact = exact_grid_dbscan(pts, eps, min_pts)
        inflated = exact_grid_dbscan(pts, eps * (1 + rho), min_pts)
        assert inflated.n_clusters <= approx.n_clusters <= exact.n_clusters


@settings(max_examples=25, deadline=None)
@given(
    pts=arrays(
        np.float64,
        st.tuples(st.integers(2, 50), st.integers(1, 3)),
        elements=st.floats(0, 25),
    ),
    eps=st.floats(0.5, 8.0),
    min_pts=st.integers(1, 6),
    rho=st.sampled_from([0.001, 0.01, 0.1, 0.5, 1.0]),
)
def test_property_sandwich(pts, eps, min_pts, rho):
    approx = approx_dbscan(pts, eps, min_pts, rho=rho)
    exact = brute_dbscan(pts, eps, min_pts)
    inflated = brute_dbscan(pts, eps * (1 + rho), min_pts)
    assert sandwich_holds(exact, approx, inflated)
    assert (approx.core_mask == exact.core_mask).all()


@settings(max_examples=15, deadline=None)
@given(
    pts=arrays(
        np.float64,
        st.tuples(st.integers(2, 40), st.just(2)),
        elements=st.floats(0, 15),
    ),
    eps=st.floats(0.5, 5.0),
    min_pts=st.integers(1, 5),
)
def test_property_approx_legal_for_paper_default_rho(pts, eps, min_pts):
    """rho = 0.001 (the paper's recommended default) must always be legal."""
    rho = 0.001
    approx = approx_dbscan(pts, eps, min_pts, rho=rho)
    exact = brute_dbscan(pts, eps, min_pts)
    inflated = brute_dbscan(pts, eps * (1 + rho), min_pts)
    assert sandwich_holds(exact, approx, inflated)
