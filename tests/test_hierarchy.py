"""Tests for the Lemma 5 approximate range-counting hierarchy.

The central contract: every answer lies in
``[|B(q, eps) ∩ P|, |B(q, eps(1+rho)) ∩ P|]``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import DataError, ParameterError
from repro.grid.hierarchy import CountingHierarchy


def exact_counts(points, q, radius):
    sq = ((points - q) ** 2).sum(axis=1)
    return int((sq <= radius * radius).sum())


def assert_contract(structure, points, q, eps, rho):
    ans = structure.count(q)
    lo = exact_counts(points, q, eps)
    hi = exact_counts(points, q, eps * (1 + rho))
    assert lo <= ans <= hi, (lo, ans, hi)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(DataError):
            CountingHierarchy(np.empty((0, 2)), 1.0, 0.1)

    def test_rejects_bad_eps(self):
        with pytest.raises(ParameterError):
            CountingHierarchy(np.zeros((3, 2)), 0.0, 0.1)

    def test_rejects_bad_rho(self):
        with pytest.raises(ParameterError):
            CountingHierarchy(np.zeros((3, 2)), 1.0, -0.5)

    def test_level_count_formula(self):
        pts = np.zeros((5, 2))
        # h = max(1, 1 + ceil(log2(1/rho)))
        assert CountingHierarchy(pts, 1.0, 1.5).n_levels == 1
        assert CountingHierarchy(pts, 1.0, 0.5).n_levels == 2
        assert CountingHierarchy(pts, 1.0, 0.1).n_levels == 5
        assert CountingHierarchy(pts, 1.0, 0.001).n_levels == 11

    def test_node_count_positive(self):
        rng = np.random.default_rng(0)
        structure = CountingHierarchy(rng.uniform(size=(50, 2)), 0.3, 0.1)
        assert structure.node_count() >= 1

    def test_verbatim_structure_has_more_nodes(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 5, size=(200, 2))
        verbatim = CountingHierarchy(pts, 1.0, 0.01, exact_leaf_size=0)
        pruned = CountingHierarchy(pts, 1.0, 0.01)
        assert verbatim.node_count() >= pruned.node_count()


class TestCountContract:
    @pytest.mark.parametrize("rho", [0.001, 0.01, 0.1, 0.5])
    @pytest.mark.parametrize("d", [1, 2, 3, 5])
    def test_uniform_data(self, rho, d):
        rng = np.random.default_rng(hash((rho, d)) % 2**32)
        pts = rng.uniform(0, 20, size=(300, d))
        eps = 3.0
        structure = CountingHierarchy(pts, eps, rho)
        for _ in range(15):
            q = rng.uniform(-2, 22, size=d)
            assert_contract(structure, pts, q, eps, rho)

    @pytest.mark.parametrize("exact_leaf_size", [0, 1, 8, 1000])
    def test_leaf_size_variants(self, exact_leaf_size):
        rng = np.random.default_rng(42)
        pts = rng.normal(5, 2, size=(250, 3))
        eps, rho = 1.5, 0.05
        structure = CountingHierarchy(pts, eps, rho, exact_leaf_size=exact_leaf_size)
        for _ in range(15):
            q = rng.normal(5, 3, size=3)
            assert_contract(structure, pts, q, eps, rho)

    def test_clustered_data(self):
        rng = np.random.default_rng(7)
        pts = np.vstack([
            rng.normal(0, 0.3, size=(150, 2)),
            rng.normal(10, 0.3, size=(150, 2)),
        ])
        structure = CountingHierarchy(pts, 1.0, 0.01)
        for q in [np.zeros(2), np.array([10.0, 10.0]), np.array([5.0, 5.0])]:
            assert_contract(structure, pts, q, 1.0, 0.01)

    def test_duplicate_points(self):
        pts = np.tile(np.array([[3.0, 3.0]]), (97, 1))
        structure = CountingHierarchy(pts, 1.0, 0.01)
        assert structure.count(np.array([3.0, 3.0])) == 97
        assert structure.count(np.array([3.0, 4.05])) == 0

    def test_query_exactly_on_boundary_band(self):
        # Points in the (eps, eps(1+rho)] annulus may or may not be counted.
        pts = np.array([[0.0, 0.0], [1.005, 0.0]])
        structure = CountingHierarchy(pts, 1.0, 0.01)
        ans = structure.count(np.zeros(2))
        assert 1 <= ans <= 2

    def test_big_rho(self):
        pts = np.random.default_rng(3).uniform(0, 10, size=(100, 2))
        structure = CountingHierarchy(pts, 2.0, 2.0)  # rho > 1: single level
        assert structure.n_levels == 1
        for q in pts[:10]:
            assert_contract(structure, pts, q, 2.0, 2.0)


class TestContainsAny:
    def test_definitely_yes(self):
        pts = np.array([[0.0, 0.0]])
        structure = CountingHierarchy(pts, 1.0, 0.01)
        assert structure.contains_any(np.array([0.5, 0.0]))

    def test_definitely_no(self):
        pts = np.array([[0.0, 0.0]])
        structure = CountingHierarchy(pts, 1.0, 0.01)
        assert not structure.contains_any(np.array([5.0, 0.0]))

    def test_consistent_with_count(self):
        rng = np.random.default_rng(11)
        pts = rng.uniform(0, 15, size=(200, 3))
        structure = CountingHierarchy(pts, 2.0, 0.05)
        for _ in range(25):
            q = rng.uniform(0, 15, size=3)
            within_eps = exact_counts(pts, q, 2.0)
            within_outer = exact_counts(pts, q, 2.0 * 1.05)
            got = structure.contains_any(q)
            if within_eps > 0:
                assert got
            if within_outer == 0:
                assert not got


@settings(max_examples=60, deadline=None)
@given(
    pts=arrays(np.float64, st.tuples(st.integers(1, 50), st.just(2)),
               elements=st.floats(0, 50)),
    q=arrays(np.float64, (2,), elements=st.floats(-5, 55)),
    eps=st.floats(0.5, 10.0),
    rho=st.sampled_from([0.001, 0.01, 0.1, 0.3]),
)
def test_property_count_contract(pts, q, eps, rho):
    structure = CountingHierarchy(pts, eps, rho)
    ans = structure.count(q)
    # Use a tiny relative slack on the radii: the structure compares
    # squared distances computed through box bounds, whose last-ulp
    # rounding can differ from the direct computation at exact boundaries.
    lo = exact_counts(pts, q, eps * (1 - 1e-12))
    hi = exact_counts(pts, q, eps * (1 + rho) * (1 + 1e-12))
    assert lo <= ans <= hi


@settings(max_examples=40, deadline=None)
@given(
    pts=arrays(np.float64, st.tuples(st.integers(1, 30), st.just(3)),
               elements=st.floats(0, 20)),
    eps=st.floats(0.5, 5.0),
    rho=st.sampled_from([0.01, 0.1]),
)
def test_property_self_queries_count_self(pts, eps, rho):
    # Querying at a data point must count at least that point.
    structure = CountingHierarchy(pts, eps, rho)
    for q in pts[:5]:
        assert structure.count(q) >= 1
