"""Tests for :mod:`repro.engine`: the structure cache, the reusable
:class:`~repro.engine.ClusteringEngine`, and the incremental multi-eps sweep.

The contract under test everywhere is **byte-identity**: every engine
answer — cold, warm, mid-sweep, evicted, parallel — must equal the
corresponding one-shot :func:`repro.dbscan` / :func:`repro.approx_dbscan`
call exactly (same clusters, same labels, same core mask).
"""

import numpy as np
import pytest

from repro import ClusteringEngine, StructureCache, approx_dbscan, dbscan
from repro.engine import approx_carry_ok, ascending_order, preunion_pairs
from repro.engine.cache import default_cache, estimate_structure_bytes
from repro.errors import ParameterError
from repro.parallel import ParallelConfig


@pytest.fixture()
def blob_points():
    """Three well-separated Gaussian blobs plus scattered noise (2-D)."""
    rng = np.random.default_rng(7)
    return np.vstack([
        rng.normal((100.0, 100.0), 8.0, size=(120, 2)),
        rng.normal((400.0, 120.0), 10.0, size=(140, 2)),
        rng.normal((250.0, 420.0), 12.0, size=(130, 2)),
        rng.uniform(0.0, 500.0, size=(60, 2)),
    ])


@pytest.fixture()
def blob_points_3d():
    rng = np.random.default_rng(11)
    return np.vstack([
        rng.normal((50.0, 50.0, 50.0), 4.0, size=(90, 3)),
        rng.normal((200.0, 60.0, 180.0), 5.0, size=(90, 3)),
        rng.uniform(0.0, 250.0, size=(40, 3)),
    ])


def assert_identical(engine_result, fresh_result):
    """Byte-identity: clusters, primary labels and core mask all equal."""
    assert engine_result == fresh_result
    assert np.array_equal(engine_result.labels, fresh_result.labels)
    assert np.array_equal(engine_result.core_mask, fresh_result.core_mask)


# --------------------------------------------------------------- unit helpers


class TestSweepHelpers:
    def test_ascending_order_stable(self):
        assert ascending_order([3.0, 1.0, 2.0, 1.0]) == [1, 3, 2, 0]

    def test_ascending_order_rejects_empty(self):
        with pytest.raises(ParameterError):
            ascending_order([])

    def test_ascending_order_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            ascending_order([1.0, 0.0])

    def test_carry_gate(self):
        # eps2 >= eps1 * (1 + rho) is the Theorem 3 sandwich condition.
        assert approx_carry_ok(10.0, 11.0, 0.1)
        assert not approx_carry_ok(10.0, 10.5, 0.1)
        assert approx_carry_ok(10.0, 10.5, 0.001)

    def test_preunion_pairs_are_same_component(self, blob_points):
        prev = dbscan(blob_points, 25.0, 10, algorithm="grid")
        engine = ClusteringEngine(blob_points, cache=StructureCache())
        pairs = preunion_pairs(prev, engine.grid(40.0))
        # Every pair must join cells whose points share a prev cluster.
        labels = prev.labels
        grid = engine.grid(40.0)
        for c1, c2 in pairs:
            l1 = {int(x) for x in labels[grid.cells[c1]] if x >= 0}
            l2 = {int(x) for x in labels[grid.cells[c2]] if x >= 0}
            assert l1 & l2


class TestStructureCache:
    def test_get_or_build_builds_once(self):
        cache = StructureCache()
        calls = []
        for _ in range(3):
            cache.get_or_build(("k",), lambda: calls.append(1) or "v")
        assert calls == [1]
        assert cache.stats()["hits"] == 2
        assert cache.stats()["misses"] == 1

    def test_lru_eviction_keeps_most_recent(self):
        cache = StructureCache(max_entries=2)
        cache.insert(("a",), 1)
        cache.insert(("b",), 2)
        cache.insert(("c",), 3)
        assert ("a",) not in cache
        assert ("b",) in cache and ("c",) in cache
        assert cache.stats()["evictions"] == 1

    def test_byte_cap_evicts_but_keeps_one(self):
        cache = StructureCache(max_mb=0.000001)  # ~1 byte budget
        big = np.zeros(1000, dtype=np.float64)
        cache.insert(("a",), big, nbytes=big.nbytes)
        cache.insert(("b",), big, nbytes=big.nbytes)
        assert len(cache) == 1  # never evicts below one entry

    def test_estimate_bytes_positive(self):
        assert estimate_structure_bytes(np.zeros(10)) > 0
        assert estimate_structure_bytes({"x": np.zeros(10)}) > 0
        assert estimate_structure_bytes(object()) > 0

    def test_default_cache_is_singleton(self):
        assert default_cache() is default_cache()

    def test_clear(self):
        cache = StructureCache()
        cache.insert(("a",), 1)
        cache.clear()
        assert len(cache) == 0

    def test_set_budget_recaps_live_cache(self):
        cache = StructureCache()
        big = np.zeros(100_000, dtype=np.float64)
        cache.insert(("a",), big, nbytes=big.nbytes)
        cache.insert(("b",), big, nbytes=big.nbytes)
        assert len(cache) == 2
        cache.set_budget(0.000001)  # ~1 byte: evicts down, keeps one
        assert cache.max_mb == 0.000001
        assert len(cache) == 1
        cache.set_budget(None)  # uncapped again
        cache.insert(("c",), big, nbytes=big.nbytes)
        assert len(cache) == 2
        with pytest.raises(ParameterError):
            cache.set_budget(-1.0)

    def test_concurrent_hammering_during_sweep(self, blob_points):
        """Threads hammering the cache mid-sweep must never corrupt it.

        The service hits this shape constantly: executor threads running
        sweeps against a tenant cache while the registry re-caps budgets
        and other requests insert/evict concurrently.  The test passes if
        no thread raises and the engine's sweep results stay byte-
        identical to fresh one-shot runs.
        """
        import threading

        cache = StructureCache(max_entries=8)
        engine = ClusteringEngine(blob_points, cache=cache)
        eps_grid = np.linspace(8.0, 40.0, 5)
        errors = []
        stop = threading.Event()

        def hammer(seed):
            rng = np.random.default_rng(seed)
            try:
                while not stop.is_set():
                    op = rng.integers(0, 4)
                    if op == 0:
                        cache.insert(("junk", seed, int(rng.integers(1e6))),
                                     np.zeros(64), nbytes=512)
                    elif op == 1:
                        cache.stats()
                    elif op == 2:
                        cache.set_budget(float(rng.uniform(0.5, 64.0)))
                    else:
                        cache.get(("junk", seed, 0))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        try:
            results = engine.sweep(eps_grid, 5)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)
        assert not errors, errors
        for eps, result in zip(eps_grid, results):
            assert_identical(result, dbscan(blob_points, eps, 5))


# ------------------------------------------------------------ engine basics


class TestEngineBasics:
    def test_matches(self, blob_points):
        engine = ClusteringEngine(blob_points, cache=StructureCache())
        assert engine.matches(blob_points)
        assert engine.matches(blob_points.copy())
        assert not engine.matches(blob_points[:-1])

    def test_warm_call_hits_cache(self, blob_points):
        engine = ClusteringEngine(blob_points, cache=StructureCache())
        first = engine.dbscan(30.0, 10)
        hits_after_first = first.meta["engine_cache"]["hits"]
        second = engine.dbscan(30.0, 10)
        assert second.meta["engine_cache"]["hits"] > hits_after_first
        assert_identical(second, first)

    def test_engine_matches_fresh_grid(self, blob_points):
        engine = ClusteringEngine(blob_points, cache=StructureCache())
        for _ in range(2):  # cold then warm
            assert_identical(
                engine.dbscan(30.0, 10), dbscan(blob_points, 30.0, 10, algorithm="grid")
            )

    def test_engine_matches_fresh_approx(self, blob_points):
        engine = ClusteringEngine(blob_points, cache=StructureCache())
        for _ in range(2):
            assert_identical(
                engine.approx_dbscan(30.0, 10, rho=0.01),
                approx_dbscan(blob_points, 30.0, 10, rho=0.01),
            )

    def test_engine_kdd96_matches(self, blob_points):
        engine = ClusteringEngine(blob_points, cache=StructureCache())
        via_engine = engine.dbscan(30.0, 10, algorithm="kdd96")
        fresh = dbscan(blob_points, 30.0, 10, algorithm="kdd96")
        assert_identical(via_engine, fresh)
        # KDD96's expansion order is part of its contract.
        assert np.array_equal(
            via_engine.meta["first_labels"], fresh.meta["first_labels"]
        )

    def test_engine_gunawan2d_matches(self, blob_points):
        engine = ClusteringEngine(blob_points, cache=StructureCache())
        assert_identical(
            engine.dbscan(30.0, 10, algorithm="gunawan2d"),
            dbscan(blob_points, 30.0, 10, algorithm="gunawan2d"),
        )

    def test_engine_3d(self, blob_points_3d):
        engine = ClusteringEngine(blob_points_3d, cache=StructureCache())
        assert_identical(
            engine.dbscan(15.0, 8), dbscan(blob_points_3d, 15.0, 8, algorithm="grid")
        )

    def test_empty_dataset(self):
        engine = ClusteringEngine(np.empty((0, 2)), cache=StructureCache())
        assert engine.dbscan(1.0, 3).n == 0
        assert engine.sweep([1.0, 2.0], 3)[0].n == 0


class TestApiEngineParameter:
    def test_dbscan_engine_kwarg(self, blob_points):
        engine = ClusteringEngine(blob_points, cache=StructureCache())
        assert_identical(
            dbscan(blob_points, 30.0, 10, engine=engine),
            dbscan(blob_points, 30.0, 10),
        )

    def test_approx_engine_kwarg(self, blob_points):
        engine = ClusteringEngine(blob_points, cache=StructureCache())
        assert_identical(
            approx_dbscan(blob_points, 30.0, 10, rho=0.01, engine=engine),
            approx_dbscan(blob_points, 30.0, 10, rho=0.01),
        )

    def test_engine_dataset_mismatch(self, blob_points):
        engine = ClusteringEngine(blob_points, cache=StructureCache())
        with pytest.raises(ParameterError, match="different dataset"):
            dbscan(blob_points[:-1], 30.0, 10, engine=engine)
        with pytest.raises(ParameterError, match="different dataset"):
            approx_dbscan(blob_points[:-1], 30.0, 10, engine=engine)

    def test_engine_checkpoint_conflict(self, blob_points, tmp_path):
        engine = ClusteringEngine(blob_points, cache=StructureCache())
        ckpt = str(tmp_path / "c.npz")
        with pytest.raises(ParameterError, match="checkpoint"):
            dbscan(blob_points, 30.0, 10, engine=engine, checkpoint=ckpt)
        with pytest.raises(ParameterError, match="checkpoint"):
            approx_dbscan(blob_points, 30.0, 10, engine=engine, checkpoint=ckpt)


# ------------------------------------------------------------------- sweeps


EPS_GRID = [55.0, 20.0, 35.0, 27.0, 70.0]  # deliberately unsorted


class TestSweepGrid:
    def test_sweep_matches_fresh_runs(self, blob_points):
        engine = ClusteringEngine(blob_points, cache=StructureCache())
        results = engine.sweep(EPS_GRID, 10)
        assert len(results) == len(EPS_GRID)
        for eps, res in zip(EPS_GRID, results):
            assert_identical(res, dbscan(blob_points, eps, 10, algorithm="grid"))

    def test_sweep_results_in_input_order(self, blob_points):
        engine = ClusteringEngine(blob_points, cache=StructureCache())
        results = engine.sweep(EPS_GRID, 10)
        for eps, res in zip(EPS_GRID, results):
            assert res.meta["eps"] == eps

    def test_sweep_under_eviction_pressure(self, blob_points):
        # A one-entry cache forces constant eviction mid-sweep; the carry
        # seeds must survive (they travel through hooks, not the cache).
        cache = StructureCache(max_entries=1)
        engine = ClusteringEngine(blob_points, cache=cache)
        results = engine.sweep(EPS_GRID, 10)
        assert cache.stats()["evictions"] > 0
        for eps, res in zip(EPS_GRID, results):
            assert_identical(res, dbscan(blob_points, eps, 10, algorithm="grid"))

    def test_sweep_parallel_matches_serial(self, blob_points):
        engine = ClusteringEngine(blob_points, cache=StructureCache())
        cfg = ParallelConfig(workers=2, min_points=0)
        results = engine.sweep(EPS_GRID, 10, workers=cfg)
        for eps, res in zip(EPS_GRID, results):
            assert_identical(res, dbscan(blob_points, eps, 10, algorithm="grid"))

    def test_sweep_rejects_unknown_algorithm(self, blob_points):
        engine = ClusteringEngine(blob_points, cache=StructureCache())
        with pytest.raises(ParameterError, match="sweep supports"):
            engine.sweep(EPS_GRID, 10, algorithm="kdd96")

    def test_sweep_3d(self, blob_points_3d):
        engine = ClusteringEngine(blob_points_3d, cache=StructureCache())
        for eps, res in zip([10.0, 16.0, 24.0], engine.sweep([10.0, 16.0, 24.0], 8)):
            assert_identical(res, dbscan(blob_points_3d, eps, 8, algorithm="grid"))


class TestSweepApprox:
    def test_sweep_matches_fresh_runs(self, blob_points):
        engine = ClusteringEngine(blob_points, cache=StructureCache())
        results = engine.sweep(EPS_GRID, 10, algorithm="approx", rho=0.01)
        for eps, res in zip(EPS_GRID, results):
            assert_identical(res, approx_dbscan(blob_points, eps, 10, rho=0.01))

    def test_close_spaced_eps_with_large_rho(self, blob_points):
        # Steps closer than a (1 + rho) factor make the preunion carry
        # unsound; the gate must drop it and the outputs stay identical.
        eps_list = [30.0, 30.5, 31.0, 60.0]
        rho = 0.05
        engine = ClusteringEngine(blob_points, cache=StructureCache())
        results = engine.sweep(eps_list, 10, algorithm="approx", rho=rho)
        for eps, res in zip(eps_list, results):
            assert_identical(res, approx_dbscan(blob_points, eps, 10, rho=rho))

    def test_sweep_parallel_matches_fresh(self, blob_points):
        engine = ClusteringEngine(blob_points, cache=StructureCache())
        cfg = ParallelConfig(workers=2, min_points=0)
        results = engine.sweep(EPS_GRID, 10, algorithm="approx", rho=0.01, workers=cfg)
        for eps, res in zip(EPS_GRID, results):
            assert_identical(res, approx_dbscan(blob_points, eps, 10, rho=0.01))


class TestHooksDirect:
    """The reuse seam itself: donated values must never change the output."""

    def test_hooks_warm_grid_and_core_mask(self, blob_points):
        from repro.algorithms.exact_grid import exact_grid_dbscan
        from repro.grid.cells import Grid
        from repro.runtime.pipeline import PipelineHooks

        baseline = exact_grid_dbscan(blob_points, 30.0, 10)
        grid = Grid(np.asarray(blob_points, dtype=np.float64), 30.0)
        hooks = PipelineHooks(grid=grid, core_mask=baseline.core_mask.copy())
        warm = exact_grid_dbscan(blob_points, 30.0, 10, hooks=hooks)
        assert_identical(warm, baseline)

    def test_hooks_reject_wrong_eps_grid(self, blob_points):
        from repro.algorithms.exact_grid import exact_grid_dbscan
        from repro.grid.cells import Grid
        from repro.runtime.pipeline import PipelineHooks

        wrong = Grid(np.asarray(blob_points, dtype=np.float64), 12.0)
        with pytest.raises(ParameterError, match="eps"):
            exact_grid_dbscan(blob_points, 30.0, 10, hooks=PipelineHooks(grid=wrong))

    def test_hooks_engine_conflict(self, blob_points):
        from repro.runtime.pipeline import PipelineHooks

        engine = ClusteringEngine(blob_points, cache=StructureCache())
        with pytest.raises(ParameterError, match="hooks"):
            approx_dbscan(
                blob_points, 30.0, 10, engine=engine, hooks=PipelineHooks()
            )

    def test_on_phase_sees_all_phases(self, blob_points):
        from repro.algorithms.exact_grid import exact_grid_dbscan
        from repro.runtime.pipeline import PipelineHooks

        seen = []
        hooks = PipelineHooks(on_phase=lambda phase, value: seen.append(phase))
        exact_grid_dbscan(blob_points, 30.0, 10, hooks=hooks)
        assert seen == ["grid", "cores", "components", "borders"]

    def test_phase_seconds_in_meta(self, blob_points):
        result = dbscan(blob_points, 30.0, 10, algorithm="grid")
        phases = result.meta["phase_seconds"]
        assert set(phases) == {"grid", "cores", "components", "borders"}
        assert all(v >= 0 for v in phases.values())
