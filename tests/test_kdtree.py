"""Unit and property tests for the kd-tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import DataError
from repro.index.kdtree import KDTree


def brute_range(points, q, radius):
    sq = ((points - q) ** 2).sum(axis=1)
    return np.nonzero(sq <= radius * radius)[0]


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(DataError):
            KDTree(np.empty((0, 2)))

    def test_rejects_1d_array(self):
        with pytest.raises(DataError):
            KDTree(np.zeros(5))

    def test_rejects_bad_leaf_size(self):
        with pytest.raises(DataError):
            KDTree(np.zeros((3, 2)), leaf_size=0)

    def test_handles_all_identical_points(self):
        pts = np.ones((100, 3))
        tree = KDTree(pts, leaf_size=4)
        assert len(tree.range_query(np.ones(3), 0.1)) == 100

    def test_single_point(self):
        tree = KDTree(np.array([[1.0, 2.0]]))
        assert tree.range_query(np.array([1.0, 2.0]), 0.0).tolist() == [0]


class TestRangeQuery:
    @pytest.mark.parametrize("d", [1, 2, 3, 5])
    @pytest.mark.parametrize("leaf_size", [1, 4, 32])
    def test_matches_brute(self, d, leaf_size):
        rng = np.random.default_rng(d * 10 + leaf_size)
        pts = rng.uniform(0, 100, size=(300, d))
        tree = KDTree(pts, leaf_size=leaf_size)
        for _ in range(10):
            q = rng.uniform(0, 100, size=d)
            r = float(rng.uniform(1, 40))
            assert tree.range_query(q, r).tolist() == brute_range(pts, q, r).tolist()

    def test_zero_radius(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [0.0, 0.0]])
        tree = KDTree(pts)
        assert tree.range_query(np.zeros(2), 0.0).tolist() == [0, 2]

    def test_radius_covering_everything(self):
        rng = np.random.default_rng(3)
        pts = rng.normal(size=(50, 3))
        tree = KDTree(pts)
        assert len(tree.range_query(np.zeros(3), 1000.0)) == 50

    def test_query_far_away(self):
        pts = np.random.default_rng(4).normal(size=(50, 2))
        tree = KDTree(pts)
        assert len(tree.range_query(np.array([1e6, 1e6]), 1.0)) == 0


class TestRangeQueryBatch:
    @pytest.mark.parametrize("d", [1, 2, 3])
    @pytest.mark.parametrize("leaf_size", [1, 4, 32])
    def test_matches_single_queries(self, d, leaf_size):
        rng = np.random.default_rng(d * 100 + leaf_size)
        pts = rng.uniform(0, 100, size=(300, d))
        tree = KDTree(pts, leaf_size=leaf_size)
        queries = rng.uniform(0, 100, size=(25, d))
        r = 20.0
        batch = tree.range_query_batch(queries, r)
        assert len(batch) == len(queries)
        for q, hits in zip(queries, batch):
            assert hits.tolist() == tree.range_query(q, r).tolist()

    def test_empty_batch(self):
        tree = KDTree(np.random.default_rng(0).normal(size=(20, 2)))
        assert tree.range_query_batch(np.empty((0, 2)), 1.0) == []

    def test_rejects_1d_queries(self):
        from repro.errors import DataError

        tree = KDTree(np.random.default_rng(0).normal(size=(20, 2)))
        with pytest.raises(DataError):
            tree.range_query_batch(np.zeros(2), 1.0)

    def test_large_coordinates_stay_exact(self):
        # The batched leaf kernel must use the cancellation-safe diff form:
        # coordinates around 1e8 would flip boundary verdicts under the
        # expanded |a|^2 + |b|^2 - 2ab form.
        base = 1e8
        pts = np.array([[base, base], [base + 1.0, base], [base + 3.0, base]])
        tree = KDTree(pts, leaf_size=1)
        queries = np.array([[base, base]])
        (hits,) = tree.range_query_batch(queries, 1.0)
        assert hits.tolist() == tree.range_query(queries[0], 1.0).tolist() == [0, 1]


class TestCountWithin:
    def test_matches_range_query(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 10, size=(200, 3))
        tree = KDTree(pts, leaf_size=8)
        for _ in range(10):
            q = rng.uniform(0, 10, size=3)
            r = float(rng.uniform(0.5, 5))
            assert tree.count_within(q, r) == len(tree.range_query(q, r))

    def test_cap_early_exit(self):
        pts = np.zeros((100, 2))
        tree = KDTree(pts)
        # With a cap the count may stop early but never under the cap when
        # enough points exist.
        assert tree.count_within(np.zeros(2), 1.0, cap=5) >= 5

    def test_cap_does_not_undercount_small_sets(self):
        pts = np.array([[0.0, 0.0], [0.5, 0.0], [5.0, 5.0]])
        tree = KDTree(pts)
        assert tree.count_within(np.zeros(2), 1.0, cap=10) == 2


class TestNearest:
    @pytest.mark.parametrize("d", [1, 2, 4])
    def test_matches_brute(self, d):
        rng = np.random.default_rng(6 + d)
        pts = rng.uniform(0, 50, size=(150, d))
        tree = KDTree(pts, leaf_size=4)
        for _ in range(15):
            q = rng.uniform(0, 50, size=d)
            sq = ((pts - q) ** 2).sum(axis=1)
            idx, got = tree.nearest(q)
            assert got == pytest.approx(sq.min())
            assert sq[idx] == pytest.approx(sq.min())

    def test_bound_prunes_everything(self):
        pts = np.array([[10.0, 10.0]])
        tree = KDTree(pts)
        idx, sq = tree.nearest(np.zeros(2), bound_sq=1.0)
        assert idx == -1
        assert sq == 1.0

    def test_bound_allows_better(self):
        pts = np.array([[1.0, 0.0], [10.0, 0.0]])
        tree = KDTree(pts)
        idx, sq = tree.nearest(np.zeros(2), bound_sq=4.0)
        assert idx == 0
        assert sq == pytest.approx(1.0)


class TestKNearest:
    def test_matches_brute_ordering(self):
        rng = np.random.default_rng(8)
        pts = rng.uniform(0, 20, size=(120, 3))
        tree = KDTree(pts, leaf_size=6)
        q = rng.uniform(0, 20, size=3)
        sq = ((pts - q) ** 2).sum(axis=1)
        expected = np.argsort(sq, kind="stable")[:7]
        got = [idx for idx, _d in tree.k_nearest(q, 7)]
        assert sorted(sq[got]) == pytest.approx(sorted(sq[expected]))

    def test_k_larger_than_n(self):
        pts = np.zeros((3, 2))
        tree = KDTree(pts)
        assert len(tree.k_nearest(np.zeros(2), 10)) == 3

    def test_k_one_equals_nearest(self):
        rng = np.random.default_rng(9)
        pts = rng.normal(size=(60, 2))
        tree = KDTree(pts)
        q = rng.normal(size=2)
        (idx, sq), = tree.k_nearest(q, 1)
        n_idx, n_sq = tree.nearest(q)
        assert sq == pytest.approx(n_sq)


@settings(max_examples=50, deadline=None)
@given(
    pts=arrays(np.float64, st.tuples(st.integers(1, 40), st.just(3)),
               elements=st.floats(-100, 100)),
    q=arrays(np.float64, (3,), elements=st.floats(-100, 100)),
    radius=st.floats(0.0, 150.0),
)
def test_property_range_query_matches_brute(pts, q, radius):
    tree = KDTree(pts, leaf_size=3)
    assert tree.range_query(q, radius).tolist() == brute_range(pts, q, radius).tolist()


@settings(max_examples=50, deadline=None)
@given(
    pts=arrays(np.float64, st.tuples(st.integers(1, 30), st.just(2)),
               elements=st.floats(-50, 50)),
    q=arrays(np.float64, (2,), elements=st.floats(-50, 50)),
)
def test_property_nearest_matches_brute(pts, q):
    tree = KDTree(pts, leaf_size=2)
    sq = ((pts - q) ** 2).sum(axis=1)
    _idx, got = tree.nearest(q)
    assert got == pytest.approx(sq.min(), abs=1e-9)
