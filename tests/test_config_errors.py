"""Tests for the config module, error types, and new CLI commands."""

import numpy as np
import pytest

from repro import config
from repro.cli import main
from repro.data import io as data_io
from repro.errors import (
    AlgorithmError,
    ConfigError,
    DataError,
    ParameterError,
    ReproError,
    TimeoutExceeded,
    WorkerPoolError,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (ParameterError, DataError, AlgorithmError, TimeoutExceeded):
            assert issubclass(exc_type, ReproError)

    def test_parameter_error_is_value_error(self):
        assert issubclass(ParameterError, ValueError)
        assert issubclass(DataError, ValueError)

    def test_timeout_carries_fields(self):
        exc = TimeoutExceeded(12.5, 10.0)
        assert exc.elapsed == 12.5
        assert exc.budget == 10.0
        assert "12.50s" in str(exc)

    def test_single_except_catches_everything(self):
        caught = []
        for exc in (ParameterError("x"), DataError("y"), TimeoutExceeded(1, 0)):
            try:
                raise exc
            except ReproError as e:
                caught.append(e)
        assert len(caught) == 3


class TestConfig:
    def test_paper_constants(self):
        assert config.DOMAIN_SIZE == 100_000.0
        assert config.PAPER_MINPTS == 100
        assert config.FIG9_MINPTS == 20
        assert config.DEFAULT_RHO == 0.001
        assert config.PAPER_RHO_GRID[0] == 0.001
        assert config.PAPER_RHO_GRID[-1] == 0.1
        assert config.PAPER_DIMENSIONS == (3, 5, 7)

    def test_scale_factor_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert config.scale_factor() == 1.0

    def test_scale_factor_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert config.scale_factor() == 2.5

    def test_scale_factor_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "not-a-number")
        assert config.scale_factor() == 1.0

    def test_scale_factor_negative_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "-3")
        assert config.scale_factor() == 1.0

    def test_scaled(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert config.scaled(2_000_000) == 20_000
        assert config.scaled(1) == 100  # floor


class TestStrictEnvParsing:
    """Invalid REPRO_* values fail loudly with ConfigError at call time."""

    def test_workers_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert config.default_workers() == 1

    def test_workers_valid(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert config.default_workers() == 4

    @pytest.mark.parametrize("value", ["abc", "2.5", "0", "-2", " "])
    def test_workers_invalid(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_WORKERS", value)
        if not value.strip():
            assert config.default_workers() == 1  # empty counts as unset
        else:
            with pytest.raises(ConfigError, match="REPRO_WORKERS"):
                config.default_workers()

    def test_min_points_zero_is_legal(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_MIN_POINTS", "0")
        assert config.parallel_min_points() == 0

    @pytest.mark.parametrize("value", ["abc", "-1"])
    def test_min_points_invalid(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_PARALLEL_MIN_POINTS", value)
        with pytest.raises(ConfigError, match="REPRO_PARALLEL_MIN_POINTS"):
            config.parallel_min_points()

    @pytest.mark.parametrize("value", ["abc", "-1"])
    def test_shard_retries_invalid(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_MAX_SHARD_RETRIES", value)
        with pytest.raises(ConfigError, match="REPRO_MAX_SHARD_RETRIES"):
            config.max_shard_retries()

    def test_shard_retries_default_and_valid(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_SHARD_RETRIES", raising=False)
        assert config.max_shard_retries() == 2
        monkeypatch.setenv("REPRO_MAX_SHARD_RETRIES", "0")
        assert config.max_shard_retries() == 0

    @pytest.mark.parametrize("value", ["abc", "0", "-1.5"])
    def test_shard_timeout_invalid(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", value)
        with pytest.raises(ConfigError, match="REPRO_SHARD_TIMEOUT"):
            config.shard_timeout()

    def test_shard_timeout_default_and_valid(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARD_TIMEOUT", raising=False)
        assert config.shard_timeout() is None
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "1.5")
        assert config.shard_timeout() == 1.5

    def test_chunk_budget_default_and_valid(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHUNK_BUDGET", raising=False)
        assert config.chunk_budget() == 4_000_000
        monkeypatch.setenv("REPRO_CHUNK_BUDGET", "1000")
        assert config.chunk_budget() == 1000

    @pytest.mark.parametrize("value", ["abc", "2.5", "0", "-7"])
    def test_chunk_budget_invalid(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_CHUNK_BUDGET", value)
        with pytest.raises(ConfigError, match="REPRO_CHUNK_BUDGET"):
            config.chunk_budget()

    def test_chunk_budget_steers_distance_chunking(self, monkeypatch):
        from repro.geometry import distance as dm

        monkeypatch.setenv("REPRO_CHUNK_BUDGET", "10")
        rng = np.random.default_rng(3)
        a = rng.normal(size=(23, 2))
        b = rng.normal(size=(4, 2))
        chunks = list(dm.iter_chunked_sq_dists(a, b))
        assert len(chunks) > 1  # tiny budget forces many chunks
        full = dm.pairwise_sq_dists(a, b)
        for rows, block in chunks:
            assert np.allclose(block, full[rows])

    def test_config_error_is_repro_and_value_error(self):
        assert issubclass(ConfigError, ReproError)
        assert issubclass(ConfigError, ValueError)

    def test_worker_pool_error_carries_stats(self):
        import pickle

        exc = WorkerPoolError("pool broke", {"respawns": 3})
        assert exc.stats == {"respawns": 3}
        rt = pickle.loads(pickle.dumps(exc))
        assert rt.stats == {"respawns": 3}
        assert str(rt) == "pool broke"


@pytest.fixture()
def dataset(tmp_path):
    rng = np.random.default_rng(0)
    pts = np.vstack([
        rng.normal(10_000, 300, size=(60, 2)),
        rng.normal(60_000, 300, size=(60, 2)),
    ])
    path = str(tmp_path / "data.npy")
    data_io.save_points(pts, path)
    return path


class TestNewCLICommands:
    def test_suggest_eps(self, dataset, capsys):
        code = main([
            "suggest-eps", dataset, "--min-pts", "5",
            "--lo", "500", "--hi", "40000", "--steps", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "suggested eps" in out

    def test_optics_profile(self, dataset, capsys):
        code = main(["optics", dataset, "--eps", "5000", "--min-pts", "5"])
        assert code == 0
        assert "OPTICS ordering" in capsys.readouterr().out

    @pytest.mark.parametrize("ext", ["json", "npz"])
    def test_cluster_result_out(self, dataset, tmp_path, ext):
        out_path = str(tmp_path / f"res.{ext}")
        code = main([
            "cluster", dataset, "--eps", "2000", "--min-pts", "5",
            "--result-out", out_path,
        ])
        assert code == 0
        from repro.core.serialize import load_clustering

        restored = load_clustering(out_path)
        assert restored.n_clusters == 2


class TestLogging:
    def test_library_silent_by_default(self, capsys):
        import numpy as np

        from repro import dbscan

        dbscan(np.zeros((5, 2)), 1.0, 2)
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""

    def test_debug_records_emitted(self, caplog):
        import logging

        import numpy as np

        from repro import approx_dbscan, dbscan

        with caplog.at_level(logging.DEBUG, logger="repro"):
            pts = np.random.default_rng(0).uniform(0, 20, (100, 2))
            dbscan(pts, 2.0, 4)
            approx_dbscan(pts, 2.0, 4, rho=0.01)
        messages = [r.message for r in caplog.records]
        assert any("grid built" in m for m in messages)
        assert any("components" in m for m in messages)
        assert any("border assignment" in m for m in messages)

    def test_get_logger_namespacing(self):
        from repro.utils.log import get_logger

        assert get_logger("x.y").name == "repro.x.y"
