"""Unit tests for the grid T (cells, eps-neighbour enumeration, pairs)."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.grid.cells import Grid, default_side, neighbor_offsets


class TestDefaultSide:
    def test_2d(self):
        assert default_side(1.0, 2) == pytest.approx(1.0 / np.sqrt(2))

    def test_same_cell_within_eps(self):
        # The defining property: the diagonal of a cell equals eps.
        for d in (1, 2, 3, 5, 7):
            side = default_side(10.0, d)
            assert np.sqrt(d) * side == pytest.approx(10.0)


class TestNeighborOffsets:
    def test_2d_neighbor_count(self):
        # The paper counts 21 eps-neighbour cells per 2D cell (its count
        # includes the cell itself and omits the four diagonal cells at
        # offset (+-2, +-2), whose minimum box distance is *exactly* eps —
        # a qualifying pair could only sit on the touching corners).  Our
        # table keeps those corners for inclusive <=-eps safety, giving the
        # full 5x5 block of 25 offsets.
        offsets = neighbor_offsets(1.0, default_side(1.0, 2), 2)
        assert len(offsets) == 25

    def test_2d_strict_interior_neighbor_count_is_21(self):
        # Dropping the exactly-at-eps corner cells recovers the paper's 21
        # (20 strict neighbours + the cell itself).
        side = default_side(1.0, 2)
        offsets = neighbor_offsets(1.0, side, 2)
        strict = [
            o for o in offsets.tolist()
            if (max(abs(o[0]) - 1, 0) ** 2 + max(abs(o[1]) - 1, 0) ** 2) * side ** 2
            < 1.0 - 1e-9
        ]
        assert len(strict) == 21

    def test_includes_zero_offset(self):
        offsets = neighbor_offsets(1.0, default_side(1.0, 3), 3)
        assert any(not off.any() for off in offsets)

    def test_symmetric(self):
        offsets = neighbor_offsets(1.0, default_side(1.0, 3), 3)
        table = {tuple(o) for o in offsets.tolist()}
        assert all(tuple(-v for v in o) in table for o in table)

    def test_1d(self):
        # side = eps in 1D: offsets -2..2 qualify (gap (|o|-1)*eps <= eps).
        offsets = neighbor_offsets(1.0, 1.0, 1)
        assert sorted(o[0] for o in offsets.tolist()) == [-2, -1, 0, 1, 2]

    def test_invalid_side(self):
        with pytest.raises(ParameterError):
            neighbor_offsets(1.0, 0.0, 2)

    def test_caching_returns_same_object(self):
        a = neighbor_offsets(2.0, default_side(2.0, 3), 3)
        b = neighbor_offsets(4.0, default_side(4.0, 3), 3)  # same ratio
        assert a is b


class TestGridBasics:
    def test_cell_assignment(self):
        pts = np.array([[0.1, 0.1], [0.9, 0.9], [5.0, 5.0]])
        grid = Grid(pts, eps=np.sqrt(2))  # side = 1
        assert grid.cell_of(0) == (0, 0)
        assert grid.cell_of(1) == (0, 0)
        assert grid.cell_of(2) == (5, 5)
        assert len(grid) == 2

    def test_negative_coordinates(self):
        pts = np.array([[-0.5, -0.5], [0.5, 0.5]])
        grid = Grid(pts, eps=np.sqrt(2))
        assert grid.cell_of(0) == (-1, -1)
        assert grid.cell_of(1) == (0, 0)

    def test_points_in(self):
        pts = np.array([[0.1, 0.1], [0.2, 0.2], [9.0, 9.0]])
        grid = Grid(pts, eps=np.sqrt(2))
        assert grid.points_in((0, 0)).tolist() == [0, 1]
        assert grid.points_in((100, 100)).tolist() == []

    def test_same_cell_points_within_eps(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 50, size=(500, 3))
        eps = 4.0
        grid = Grid(pts, eps)
        for _cell, idx in grid.cells.items():
            block = pts[idx]
            diff = block[:, None, :] - block[None, :, :]
            assert ((diff ** 2).sum(axis=2) <= eps * eps + 1e-9).all()

    def test_invalid_eps(self):
        with pytest.raises(ParameterError):
            Grid(np.zeros((2, 2)), eps=0.0)

    def test_contains(self):
        grid = Grid(np.array([[1.0, 1.0]]), eps=np.sqrt(2))
        assert (1, 1) in grid
        assert (0, 0) not in grid


class TestNeighborCells:
    def test_finds_adjacent_cells(self):
        pts = np.array([[0.5, 0.5], [1.5, 0.5], [50.0, 50.0]])
        grid = Grid(pts, eps=np.sqrt(2))  # side 1
        neighbors = list(grid.neighbor_cells((0, 0)))
        assert (1, 0) in neighbors
        assert (50, 50) not in neighbors

    def test_excludes_self_by_default(self):
        pts = np.array([[0.5, 0.5]])
        grid = Grid(pts, eps=np.sqrt(2))
        assert list(grid.neighbor_cells((0, 0))) == []
        assert list(grid.neighbor_cells((0, 0), include_self=True)) == [(0, 0)]

    def test_coverage_guarantee(self):
        # Every pair of points within eps must live in the same or
        # neighbouring cells — the one-sided guarantee everything relies on.
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 30, size=(200, 3))
        eps = 3.0
        grid = Grid(pts, eps)
        sq = ((pts[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2)
        for i, j in zip(*np.nonzero(sq <= eps * eps)):
            if i == j:
                continue
            ci, cj = grid.cell_of(int(i)), grid.cell_of(int(j))
            if ci == cj:
                continue
            assert cj in set(grid.neighbor_cells(ci)), (ci, cj)

    def test_neighbor_points_match_cells(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 10, size=(80, 2))
        grid = Grid(pts, eps=2.0)
        cell = grid.cell_of(0)
        via_cells = sorted(
            int(i)
            for c in grid.neighbor_cells(cell)
            for i in grid.points_in(c)
        )
        assert sorted(grid.neighbor_points(cell).tolist()) == via_cells


class TestNeighborCellPairs:
    def test_each_pair_once(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 20, size=(150, 2))
        grid = Grid(pts, eps=3.0)
        pairs = list(grid.neighbor_cell_pairs())
        keys = {frozenset((a, b)) for a, b in pairs}
        assert len(keys) == len(pairs)  # no duplicates in either order

    def test_pairs_are_neighbors(self):
        rng = np.random.default_rng(4)
        pts = rng.uniform(0, 20, size=(100, 3))
        grid = Grid(pts, eps=4.0)
        for a, b in grid.neighbor_cell_pairs():
            assert b in set(grid.neighbor_cells(a))

    def test_subset_restriction(self):
        pts = np.array([[0.5, 0.5], [1.5, 0.5], [2.5, 0.5]])
        grid = Grid(pts, eps=np.sqrt(2))
        subset = [(0, 0), (2, 0)]
        pairs = list(grid.neighbor_cell_pairs(subset=subset))
        flat = {c for pair in pairs for c in pair}
        assert flat <= set(subset)

    def test_completeness_against_brute(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 15, size=(120, 2))
        eps = 2.5
        grid = Grid(pts, eps)
        got = {frozenset(p) for p in grid.neighbor_cell_pairs()}
        # Brute force: every unordered pair of distinct non-empty cells with
        # box distance <= eps must be present.
        cells = list(grid.cells)
        side = grid.side
        for i in range(len(cells)):
            for j in range(i + 1, len(cells)):
                a = np.asarray(cells[i])
                b = np.asarray(cells[j])
                gap = np.maximum(np.abs(a - b) - 1, 0) * side
                if (gap ** 2).sum() <= eps * eps:
                    assert frozenset((cells[i], cells[j])) in got
