"""Additional hypothesis property tests on global invariants.

These complement the per-module suites with cross-cutting invariants the
paper's definitions imply but no single module owns.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import approx_dbscan, dbscan
from repro.core.serialize import from_dict, to_dict

points_2d = arrays(
    np.float64,
    st.tuples(st.integers(2, 40), st.just(2)),
    elements=st.floats(0, 20),
)


@settings(max_examples=30, deadline=None)
@given(pts=points_2d, eps=st.floats(0.5, 6.0), min_pts=st.integers(1, 6))
def test_result_internal_consistency(pts, eps, min_pts):
    """labels / clusters / masks must all tell the same story."""
    result = dbscan(pts, eps, min_pts)
    # Every labelled point is in the cluster its label names.
    for i in range(result.n):
        label = int(result.labels[i])
        if label == -1:
            assert not any(i in c for c in result.clusters)
        else:
            assert i in result.clusters[label]
            assert label == min(result.memberships_of(i))
    # Core + border + noise partition the points.
    total = (
        int(result.core_mask.sum())
        + int(result.border_mask.sum())
        + int(result.noise_mask.sum())
    )
    assert total == result.n
    # Every cluster contains at least one core point (Definition 3).
    for cluster in result.clusters:
        assert any(result.core_mask[i] for i in cluster)


@settings(max_examples=25, deadline=None)
@given(pts=points_2d, eps=st.floats(0.5, 5.0), min_pts=st.integers(1, 5))
def test_min_pts_monotonicity(pts, eps, min_pts):
    """Raising MinPts shrinks the core set and never creates new reachability."""
    small = dbscan(pts, eps, min_pts)
    large = dbscan(pts, eps, min_pts + 2)
    assert (large.core_mask <= small.core_mask).all()
    # Points clustered under the stricter setting are clustered under the
    # looser one too.
    assert ((large.labels != -1) <= (small.labels != -1)).all()


@settings(max_examples=25, deadline=None)
@given(pts=points_2d, eps=st.floats(0.5, 4.0), min_pts=st.integers(1, 5))
def test_eps_monotonicity_of_core_and_noise(pts, eps, min_pts):
    small = dbscan(pts, eps, min_pts)
    large = dbscan(pts, eps * 1.5, min_pts)
    assert (small.core_mask <= large.core_mask).all()
    assert (large.noise_mask <= small.noise_mask).all()


@settings(max_examples=25, deadline=None)
@given(pts=points_2d, eps=st.floats(0.5, 5.0), min_pts=st.integers(1, 5))
def test_serialization_roundtrip_property(pts, eps, min_pts):
    result = dbscan(pts, eps, min_pts)
    restored = from_dict(to_dict(result))
    assert restored == result
    assert restored.labels.tolist() == result.labels.tolist()


@settings(max_examples=20, deadline=None)
@given(
    pts=points_2d,
    eps=st.floats(0.5, 5.0),
    min_pts=st.integers(1, 5),
    rho=st.sampled_from([0.01, 0.1]),
)
def test_approx_cluster_count_bounded_by_exact(pts, eps, min_pts, rho):
    """The approximate result never has more clusters than exact DBSCAN
    (it can only merge, never split — a corollary of Theorem 3)."""
    exact = dbscan(pts, eps, min_pts)
    approx = approx_dbscan(pts, eps, min_pts, rho=rho)
    assert approx.n_clusters <= exact.n_clusters
    # And the two agree exactly on what is core.
    assert (approx.core_mask == exact.core_mask).all()


@settings(max_examples=20, deadline=None)
@given(
    pts=points_2d,
    eps=st.floats(0.5, 5.0),
    min_pts=st.integers(1, 5),
)
def test_translation_invariance(pts, eps, min_pts):
    """DBSCAN's output is invariant under translation of the input.

    Instances with a pairwise distance within a few ulps of eps are
    excluded: at the exact boundary, float translation legitimately flips
    the closed-ball membership.
    """
    diff = pts[:, None, :] - pts[None, :, :]
    dists = np.sqrt((diff ** 2).sum(axis=2))
    assume(not np.any(np.abs(dists - eps) < 1e-6 * (1 + eps)))
    base = dbscan(pts, eps, min_pts)
    shifted = dbscan(pts + 1000.0, eps, min_pts)
    assert base.same_clusters(shifted)
    assert (base.core_mask == shifted.core_mask).all()


@settings(max_examples=15, deadline=None)
@given(
    pts=points_2d,
    eps=st.floats(0.5, 5.0),
    min_pts=st.integers(1, 5),
    scale=st.sampled_from([0.25, 4.0]),
)
def test_scale_equivariance(pts, eps, min_pts, scale):
    """Scaling points and eps together leaves the clustering unchanged."""
    base = dbscan(pts, eps, min_pts)
    scaled = dbscan(pts * scale, eps * scale, min_pts)
    assert base.same_clusters(scaled)
