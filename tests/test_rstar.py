"""Tests for the dynamic R*-tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import DataError
from repro.index.rstar import _MAX_ENTRIES, RStarTree


def brute_range(points, q, radius):
    sq = ((points - q) ** 2).sum(axis=1)
    return np.nonzero(sq <= radius * radius)[0].tolist()


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(DataError):
            RStarTree(np.empty((0, 2)))

    def test_single_point(self):
        tree = RStarTree(np.array([[1.0, 2.0]]))
        assert tree.range_query(np.array([1.0, 2.0]), 0.0).tolist() == [0]
        assert tree.height() == 1

    def test_invariants_random(self):
        rng = np.random.default_rng(0)
        tree = RStarTree(rng.uniform(0, 100, size=(300, 3)))
        tree.check_invariants()

    def test_invariants_sorted_insertion_order(self):
        # Adversarially sorted input stresses ChooseSubtree and splits.
        pts = np.sort(np.random.default_rng(1).uniform(0, 100, size=(250, 2)), axis=0)
        tree = RStarTree(pts)
        tree.check_invariants()

    def test_invariants_duplicates(self):
        pts = np.vstack([np.ones((80, 2)), np.zeros((80, 2))])
        tree = RStarTree(pts)
        tree.check_invariants()

    def test_tree_grows_in_height(self):
        rng = np.random.default_rng(2)
        small = RStarTree(rng.uniform(size=(_MAX_ENTRIES, 2)))
        large = RStarTree(rng.uniform(size=(2000, 2)))
        assert small.height() == 1
        assert large.height() >= 3

    def test_shuffle_seed_changes_structure_not_answers(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 50, size=(200, 2))
        a = RStarTree(pts, shuffle_seed=1)
        b = RStarTree(pts, shuffle_seed=2)
        q = np.array([25.0, 25.0])
        assert a.range_query(q, 10.0).tolist() == b.range_query(q, 10.0).tolist()


class TestRangeQuery:
    @pytest.mark.parametrize("d", [1, 2, 3, 5])
    def test_matches_brute(self, d):
        rng = np.random.default_rng(10 + d)
        pts = rng.uniform(0, 100, size=(300, d))
        tree = RStarTree(pts)
        for _ in range(10):
            q = rng.uniform(0, 100, size=d)
            r = float(rng.uniform(1, 40))
            assert tree.range_query(q, r).tolist() == brute_range(pts, q, r)

    def test_clustered_data(self):
        rng = np.random.default_rng(20)
        pts = np.vstack([rng.normal(c, 1.0, size=(100, 2)) for c in (0, 30, 60)])
        tree = RStarTree(pts)
        for q in (np.zeros(2), np.array([30.0, 30.0]), np.array([45.0, 45.0])):
            assert tree.range_query(q, 5.0).tolist() == brute_range(pts, q, 5.0)

    def test_empty_result(self):
        tree = RStarTree(np.zeros((40, 2)))
        assert len(tree.range_query(np.array([1e6, 1e6]), 1.0)) == 0

    def test_all_results(self):
        rng = np.random.default_rng(21)
        pts = rng.normal(size=(120, 3))
        tree = RStarTree(pts)
        assert len(tree.range_query(np.zeros(3), 1e6)) == 120


class TestKDD96Integration:
    def test_rstar_backend_matches_others(self):
        from repro.algorithms.kdd96 import kdd96_dbscan

        rng = np.random.default_rng(30)
        pts = np.vstack([rng.normal(0, 1, (80, 3)), rng.normal(20, 1, (80, 3))])
        a = kdd96_dbscan(pts, 3.0, 5, index="rstar")
        b = kdd96_dbscan(pts, 3.0, 5, index="rtree")
        assert a.same_clusters(b)
        assert a.meta["index"] == "rstar"


@settings(max_examples=25, deadline=None)
@given(
    pts=arrays(np.float64, st.tuples(st.integers(1, 60), st.just(2)),
               elements=st.floats(-100, 100)),
    q=arrays(np.float64, (2,), elements=st.floats(-100, 100)),
    radius=st.floats(0.0, 120.0),
)
def test_property_range_matches_brute(pts, q, radius):
    tree = RStarTree(pts)
    tree.check_invariants()
    assert tree.range_query(q, radius).tolist() == brute_range(pts, q, radius)
