"""Tests for the registry persistence layer (``repro.service.store``).

The contract under test is the crash-consistency story:

* the journal is append-only, CRC-framed, and replayable — a reload of
  the same directory reconstructs the identical catalog state;
* a torn tail (the crash hit mid-``write``) truncates to the last valid
  record and quarantines the partial bytes — it never poisons recovery
  and never silently destroys evidence;
* the snapshot is written atomically (tmp + fsync + ``os.replace``), so
  a crash mid-compaction leaves either the old snapshot or the new one,
  never a half-written file;
* payloads are content-addressed and re-fingerprinted on reload — bit
  rot is detected, quarantined, and reported, not served.
"""

import json
import os
import zlib

import numpy as np
import pytest

from repro.errors import RegistryStoreError
from repro.runtime.checkpoint import fingerprint_points
from repro.service import DatasetRegistry, FileStore, MemoryStore, open_store
from repro.service.store import RegistryState, frame_record, parse_record


def rec(name, **extra):
    return {"op": "register", "name": name, "tenant": "default",
            "source": "array", "fingerprint": "f" * 8, "payload": "",
            "warm": [], **extra}


# ------------------------------------------------------------- record frame


class TestRecordFraming:
    def test_roundtrip(self):
        record = rec("a", warm=[1.5, 2.0])
        assert parse_record(frame_record(record)) == record

    def test_bad_crc_rejected(self):
        line = frame_record(rec("a"))
        tampered = ("0" * 8) + line[8:]
        if tampered == line:  # pragma: no cover - astronomically unlikely
            tampered = ("1" * 8) + line[8:]
        assert parse_record(tampered) is None

    def test_garbage_rejected(self):
        assert parse_record("not a record") is None
        assert parse_record("") is None
        assert parse_record("00bad-hex {}") is None

    def test_unknown_op_skipped_with_note(self):
        # Forward compatibility: a journal written by a newer version
        # replays what this version understands and notes the rest.
        state = RegistryState()
        state.apply({"op": "explode"})
        assert state.datasets == {}
        assert any("unknown journal op" in note for note in state.recovered)


# ------------------------------------------------------------- memory store


class TestMemoryStore:
    def test_roundtrip(self):
        store = MemoryStore()
        store.append(rec("a"))
        store.append({"op": "tenant", "tenant": "t1", "weight": 2.0,
                      "quota_mb": None, "max_queue": 4, "max_inflight": None})
        state = store.load()
        assert set(state.datasets) == {"a"}
        assert state.tenants["t1"]["weight"] == 2.0
        assert store.persistent is False

    def test_payload_roundtrip(self):
        store = MemoryStore()
        pts = np.arange(10.0).reshape(5, 2)
        ref = store.save_payload("fp", pts)
        np.testing.assert_array_equal(store.load_payload(ref), pts)

    def test_unregister_removes(self):
        store = MemoryStore()
        store.append(rec("a"))
        store.append({"op": "unregister", "name": "a"})
        assert store.load().datasets == {}


# --------------------------------------------------------------- file store


class TestFileStore:
    def test_reload_reconstructs_state(self, tmp_path):
        store = FileStore(str(tmp_path))
        store.append(rec("a"))
        store.append(rec("b", tenant="t2"))
        store.append({"op": "tenant", "tenant": "t2", "weight": 4.0,
                      "quota_mb": 1.0, "max_queue": None, "max_inflight": 2})
        store.close()

        again = FileStore(str(tmp_path))
        state = again.load()
        assert set(state.datasets) == {"a", "b"}
        assert state.datasets["b"]["tenant"] == "t2"
        assert state.tenants["t2"]["max_inflight"] == 2
        assert not state.recovered
        again.close()

    def test_torn_tail_truncated_and_quarantined(self, tmp_path):
        store = FileStore(str(tmp_path))
        store.append(rec("a"))
        store.append(rec("b"))
        store.close()
        journal = tmp_path / "journal.jsonl"
        good = journal.read_bytes()
        # A crash mid-write: half a record, no trailing newline.
        journal.write_bytes(good + b'00000000 {"op":"register","na')

        again = FileStore(str(tmp_path))
        state = again.load()
        assert set(state.datasets) == {"a", "b"}
        assert any("torn" in note or "quarantined" in note
                   for note in state.recovered)
        # The journal was truncated back to the last valid byte...
        assert journal.read_bytes() == good
        # ...and the torn bytes were preserved, not destroyed.
        quarantined = list((tmp_path / "quarantine").iterdir())
        assert len(quarantined) == 1
        # The store stays writable after recovery.
        again.append(rec("c"))
        assert set(again.load().datasets) == {"a", "b", "c"}
        again.close()

    def test_corrupt_mid_journal_truncates_from_there(self, tmp_path):
        store = FileStore(str(tmp_path))
        store.append(rec("a"))
        store.close()
        journal = tmp_path / "journal.jsonl"
        good = journal.read_bytes()
        bad_line = frame_record(rec("evil"))
        bad_line = ("f" * 8) + bad_line[8:]  # wrong CRC
        after = frame_record(rec("late"))
        journal.write_bytes(good + (bad_line + "\n" + after + "\n").encode())

        state = FileStore(str(tmp_path)).load()
        # Everything from the first bad record on is suspect: 'late' is
        # sacrificed (quarantined, not lost) to keep replay sound.
        assert set(state.datasets) == {"a"}
        assert journal.read_bytes() == good
        assert len(list((tmp_path / "quarantine").iterdir())) == 1

    def test_compaction_snapshot_plus_empty_journal(self, tmp_path):
        store = FileStore(str(tmp_path))
        store.append(rec("a"))
        store.append(rec("b"))
        store.append({"op": "unregister", "name": "a"})
        store.compact(store.load())
        assert (tmp_path / "registry.json").exists()
        assert (tmp_path / "journal.jsonl").read_bytes() == b""
        store.append(rec("c"))
        store.close()

        state = FileStore(str(tmp_path)).load()
        assert set(state.datasets) == {"b", "c"}

    def test_corrupt_snapshot_quarantined_journal_still_replays(self, tmp_path):
        store = FileStore(str(tmp_path))
        store.append(rec("a"))
        store.compact(store.load())
        store.append(rec("b"))
        store.close()
        (tmp_path / "registry.json").write_text("{ half a json", encoding="utf-8")

        state = FileStore(str(tmp_path)).load()
        # The snapshot is gone (quarantined) but the journal records
        # written after it still replay.
        assert set(state.datasets) == {"b"}
        assert any("snapshot" in note for note in state.recovered)
        assert not (tmp_path / "registry.json").exists()
        assert len(list((tmp_path / "quarantine").iterdir())) == 1

    def test_payload_roundtrip_and_content_addressing(self, tmp_path):
        store = FileStore(str(tmp_path))
        pts = np.random.default_rng(0).normal(size=(20, 3))
        fp = fingerprint_points(pts)
        ref = store.save_payload(fp, pts)
        # Idempotent: saving the same fingerprint again reuses the file.
        assert store.save_payload(fp, pts) == ref
        loaded = store.load_payload(ref)
        np.testing.assert_array_equal(loaded, pts)
        assert fingerprint_points(np.asarray(loaded)) == fp
        store.close()

    def test_missing_payload_raises(self, tmp_path):
        store = FileStore(str(tmp_path))
        with pytest.raises(RegistryStoreError):
            store.load_payload("nope.npy")

    def test_gc_removes_orphans_only(self, tmp_path):
        store = FileStore(str(tmp_path))
        pts = np.ones((4, 2))
        live_ref = store.save_payload("live", pts)
        store.save_payload("orphan", pts * 2)
        state = RegistryState()
        state.apply(rec("a", payload=live_ref))
        removed = store.gc_payloads(state)
        assert any("orphan" in r for r in removed)
        assert os.path.exists(os.path.join(str(tmp_path), "payloads", "live.npy"))


# ---------------------------------------------------------------- factories


class TestOpenStore:
    def test_memory_specs(self):
        assert isinstance(open_store(None), MemoryStore)
        assert isinstance(open_store(""), MemoryStore)
        assert isinstance(open_store("memory"), MemoryStore)

    def test_directory_spec(self, tmp_path):
        store = open_store(str(tmp_path / "cat"))
        assert isinstance(store, FileStore)
        assert os.path.isdir(str(tmp_path / "cat"))
        store.close()


# --------------------------------------------------- registry-level recovery


class TestRegistryRecovery:
    def make_points(self, seed=7, n=60):
        return np.random.default_rng(seed).normal(size=(n, 2))

    def test_catalog_survives_reopen(self, tmp_path):
        pts = self.make_points()
        reg = DatasetRegistry(store=FileStore(str(tmp_path)))
        reg.register("d1", pts, tenant="alice")
        reg.configure_tenant("alice", weight=3.0, max_queue=5)
        baseline = reg.get("d1").engine.dbscan(0.3, 5)
        # No close(), no compact(): simulate losing the process.

        reg2 = DatasetRegistry(store=FileStore(str(tmp_path)))
        assert set(reg2.names()) == {"d1"}
        entry = reg2.get("d1")
        assert entry.tenant == "alice"
        assert entry.engine.fingerprint == reg.get("d1").engine.fingerprint
        assert reg2.tenant_config("alice").weight == 3.0
        assert reg2.tenant_config("alice").max_queue == 5
        replay = entry.engine.dbscan(0.3, 5)
        np.testing.assert_array_equal(replay.labels, baseline.labels)
        reg2.close()

    def test_warm_hints_journal_and_rebuild(self, tmp_path):
        pts = self.make_points()
        reg = DatasetRegistry(store=FileStore(str(tmp_path)))
        reg.register("d1", pts)
        reg.note_warm_eps("d1", 0.4)
        reg.note_warm_eps("d1", 0.4)  # duplicate: journaled once

        reg2 = DatasetRegistry(store=FileStore(str(tmp_path)), warm_on_recover=True)
        entry = reg2.get("d1")
        assert entry.warm_eps == (0.4,)
        # The grid for the hinted eps is already cached: clustering at it
        # hits the structure cache instead of rebuilding.
        before = entry.engine.cache.stats()["hits"]
        entry.engine.dbscan(0.4, 5)
        assert entry.engine.cache.stats()["hits"] > before
        reg2.close()

    def test_tampered_payload_quarantined_not_served(self, tmp_path):
        pts = self.make_points()
        reg = DatasetRegistry(store=FileStore(str(tmp_path)))
        reg.register("d1", pts)
        ref = reg.get("d1").payload
        payload_path = tmp_path / "payloads" / ref
        raw = np.load(str(payload_path))
        raw[0, 0] += 1.0  # bit rot
        np.save(str(payload_path), raw)

        reg2 = DatasetRegistry(store=FileStore(str(tmp_path)))
        assert "d1" not in reg2
        assert any("fingerprint" in note or "quarantine" in note
                   for note in reg2.recovered)
        assert list((tmp_path / "quarantine").iterdir())
        reg2.close()

    def test_unregister_persists(self, tmp_path):
        pts = self.make_points()
        reg = DatasetRegistry(store=FileStore(str(tmp_path)))
        reg.register("keep", pts)
        reg.register("gone", pts * 2.0)
        reg.unregister("gone")

        reg2 = DatasetRegistry(store=FileStore(str(tmp_path)))
        assert set(reg2.names()) == {"keep"}
        reg2.close()

    def test_csv_registration_recovers_without_reparse(self, tmp_path, caplog):
        csv = tmp_path / "pts.csv"
        good = self.make_points(n=30)
        lines = [",".join(f"{v:.6f}" for v in row) for row in good]
        lines.insert(3, "not,numeric")  # one bad row
        csv.write_text("\n".join(lines) + "\n", encoding="utf-8")

        store_dir = tmp_path / "store"
        reg = DatasetRegistry(store=FileStore(str(store_dir)))
        reg.register("csvset", path=str(csv), on_bad_rows="quarantine")
        sidecars = [p for p in tmp_path.iterdir() if "quarantine" in p.name]
        assert len(sidecars) == 1

        # Recovery loads the *payload*, not the CSV: no second sidecar,
        # identical points.
        reg2 = DatasetRegistry(store=FileStore(str(store_dir)))
        np.testing.assert_array_equal(
            np.asarray(reg2.get("csvset").engine.points),
            np.asarray(reg.get("csvset").engine.points),
        )
        sidecars = [p for p in tmp_path.iterdir() if "quarantine" in p.name]
        assert len(sidecars) == 1
        reg2.close()

    def test_reregister_same_csv_no_new_sidecar(self, tmp_path):
        csv = tmp_path / "pts.csv"
        good = self.make_points(n=20)
        lines = [",".join(f"{v:.6f}" for v in row) for row in good]
        lines.append("ragged,row,extra,fields")
        csv.write_text("\n".join(lines) + "\n", encoding="utf-8")

        reg = DatasetRegistry()
        reg.register("a", path=str(csv), on_bad_rows="quarantine")
        reg.register("b", path=str(csv), on_bad_rows="quarantine")
        sidecars = [p for p in tmp_path.iterdir() if "quarantine" in p.name]
        assert len(sidecars) == 1
