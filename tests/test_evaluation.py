"""Tests for the evaluation package: compare, legal rho, collapse, timing."""

import time

import numpy as np
import pytest

from repro.algorithms.exact_grid import exact_grid_dbscan
from repro.core.result import Clustering
from repro.errors import DataError, ParameterError, TimeoutExceeded
from repro.evaluation import (
    adjusted_rand_index,
    clusters_contained_in,
    collapsing_radius,
    confusion_summary,
    eps_sweep,
    format_table,
    legal_rho_profile,
    max_legal_rho,
    rand_index,
    same_clusters,
    speedup,
    timed,
)
from repro.evaluation.timing import DNF, TimedRun

from .conftest import make_blobs


def result(n, clusters, cores):
    mask = np.zeros(n, dtype=bool)
    mask[list(cores)] = True
    return Clustering(n, clusters, mask)


class TestCompare:
    def test_same_clusters(self):
        a = result(4, [{0, 1}, {2, 3}], {0, 2})
        b = result(4, [{2, 3}, {0, 1}], {0, 2})
        assert same_clusters(a, b)

    def test_containment_true(self):
        inner = result(5, [{0, 1}], {0})
        outer = result(5, [{0, 1, 2}], {0})
        assert clusters_contained_in(inner, outer)
        assert not clusters_contained_in(outer, inner)

    def test_containment_requires_same_n(self):
        with pytest.raises(DataError):
            clusters_contained_in(result(3, [], set()), result(4, [], set()))

    def test_rand_index_identical(self):
        a = result(6, [{0, 1, 2}, {3, 4}], {0, 3})
        assert rand_index(a, a) == 1.0
        assert adjusted_rand_index(a, a) == 1.0

    def test_rand_index_disagreement(self):
        a = result(4, [{0, 1}, {2, 3}], {0, 2})
        b = result(4, [{0, 2}, {1, 3}], {0, 1})
        assert rand_index(a, b) < 1.0

    def test_ari_noise_as_singletons(self):
        # All-noise results agree perfectly (each point its own singleton).
        a = result(5, [], set())
        b = result(5, [], set())
        assert adjusted_rand_index(a, b) == 1.0

    def test_confusion_summary_says_same(self):
        a = result(4, [{0, 1}], {0})
        assert "SAME" in confusion_summary(a, a)
        b = result(4, [{0, 1, 2}], {0})
        assert "DIFFERENT" in confusion_summary(a, b)


class TestMaxLegalRho:
    def test_well_separated_data_allows_big_rho(self):
        rng = np.random.default_rng(0)
        pts = np.vstack([
            rng.normal(0, 0.5, size=(60, 2)),
            rng.normal(100, 0.5, size=(60, 2)),
        ])
        rho = max_legal_rho(pts, eps=3.0, min_pts=5, rho_grid=(0.001, 0.01, 0.1))
        assert rho == 0.1

    def test_unstable_eps_gives_zero(self):
        # Two point-clouds separated by a hair more than eps — the paper's
        # epsilon_3 of Figure 6.  The gap falls inside (eps, eps(1+rho)]
        # for every grid rho, where the approximate algorithm may (and, for
        # this duplicated-point configuration, does) merge the clusters,
        # so no grid rho is legal.
        a = np.tile([[0.0, 0.0]], (30, 1))
        b = np.tile([[2.0004, 0.0]], (30, 1))
        pts = np.vstack([a, b])
        assert exact_grid_dbscan(pts, 2.0, 3).n_clusters == 2
        rho = max_legal_rho(pts, eps=2.0, min_pts=3, rho_grid=(0.001, 0.01, 0.1))
        assert rho == 0.0

    def test_respects_precomputed_exact(self):
        pts = make_blobs(100, 2, 2, spread=1.0, domain=30.0, seed=2)
        exact = exact_grid_dbscan(pts, 2.0, 4)
        rho = max_legal_rho(pts, 2.0, 4, rho_grid=(0.001,), exact=exact)
        assert rho in (0.0, 0.001)

    def test_profile_shapes(self):
        pts = make_blobs(80, 2, 2, spread=1.0, domain=25.0, seed=3)
        profile = legal_rho_profile(pts, [1.0, 2.0], 4, rho_grid=(0.001, 0.1))
        assert len(profile) == 2
        assert profile[0].eps == 1.0
        assert profile[0].n_clusters_exact >= 0

    def test_eps_sweep(self):
        values = eps_sweep(1.0, 5.0, 5)
        assert values.tolist() == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert eps_sweep(1.0, 5.0, 1).tolist() == [1.0]


class TestCollapsingRadius:
    def test_two_blob_collapse(self):
        rng = np.random.default_rng(4)
        pts = np.vstack([
            rng.normal(0, 0.3, size=(40, 2)),
            rng.normal(10, 0.3, size=(40, 2)),
        ])
        radius = collapsing_radius(pts, min_pts=5, lo=0.5)
        # Collapse must happen near the blob separation (10), certainly
        # between 2 and 15.
        assert 2.0 < radius < 15.0
        assert exact_grid_dbscan(pts, radius, 5).n_clusters == 1

    def test_already_collapsed_at_lo(self):
        pts = np.random.default_rng(5).normal(0, 0.1, size=(30, 2))
        assert collapsing_radius(pts, min_pts=3, lo=5.0) == 5.0

    def test_impossible_when_not_enough_points(self):
        with pytest.raises(ParameterError):
            collapsing_radius(np.zeros((3, 2)), min_pts=10)

    def test_verify_steps(self):
        rng = np.random.default_rng(6)
        pts = np.vstack([
            rng.normal(0, 0.3, size=(30, 2)),
            rng.normal(8, 0.3, size=(30, 2)),
        ])
        radius = collapsing_radius(pts, min_pts=4, lo=0.5, verify_steps=4)
        assert exact_grid_dbscan(pts, radius, 4).n_clusters == 1


class TestTiming:
    def test_timed_success(self):
        run = timed("x", lambda: 42)
        assert run.finished and run.result == 42
        assert run.seconds >= 0.0
        assert run.cell() != DNF

    def test_timed_timeout_recorded(self):
        def boom():
            raise TimeoutExceeded(1.0, 0.5)

        run = timed("x", boom)
        assert not run.finished
        assert run.cell() == DNF

    def test_timed_other_exception_propagates(self):
        with pytest.raises(RuntimeError):
            timed("x", lambda: (_ for _ in ()).throw(RuntimeError("boom")))

    def test_timed_measures_duration(self):
        run = timed("sleep", lambda: time.sleep(0.02))
        assert run.seconds >= 0.015

    def test_speedup(self):
        a = TimedRun("a", 2.0)
        b = TimedRun("b", 0.5)
        assert speedup(a, b) == 4.0
        assert speedup(a, TimedRun("c", None)) is None

    def test_format_table_alignment(self):
        table = format_table(["algo", "t"], [["grid", "0.1"], ["kdd96", DNF]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("algo")
        assert all(len(line) == len(lines[0]) for line in lines[1:2])
