"""Unit tests for the distance kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry import distance as dm


class TestScalarDistances:
    def test_sq_dist_simple(self):
        assert dm.sq_dist([0.0, 0.0], [3.0, 4.0]) == 25.0

    def test_dist_simple(self):
        assert dm.dist([0.0, 0.0], [3.0, 4.0]) == 5.0

    def test_zero_distance(self):
        p = np.array([1.5, -2.5, 3.0])
        assert dm.sq_dist(p, p) == 0.0

    def test_symmetry(self):
        p, q = np.array([1.0, 2.0]), np.array([-3.0, 7.0])
        assert dm.sq_dist(p, q) == dm.sq_dist(q, p)

    def test_one_dimensional(self):
        assert dm.dist([2.0], [5.0]) == 3.0


class TestSqDistsToPoint:
    def test_matches_scalar(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [3.0, 4.0]])
        q = np.array([0.0, 0.0])
        expected = [dm.sq_dist(p, q) for p in pts]
        assert np.allclose(dm.sq_dists_to_point(pts, q), expected)

    def test_single_point(self):
        pts = np.array([[1.0, 2.0, 3.0]])
        out = dm.sq_dists_to_point(pts, np.array([1.0, 2.0, 3.0]))
        assert out.shape == (1,)
        assert out[0] == 0.0

    def test_integer_inputs_promoted_to_float64(self):
        # Regression: integer arrays used to flow through un-promoted, so
        # the einsum accumulated in the integer dtype and large coordinates
        # overflowed (int32 wraps past ~46k on squared distances).
        pts = np.array([[60_000, 0], [0, 0]], dtype=np.int32)
        q = np.array([0, 0], dtype=np.int32)
        out = dm.sq_dists_to_point(pts, q)
        assert out.dtype == np.float64
        assert out.tolist() == [3.6e9, 0.0]


class TestPairwise:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(7, 3))
        b = rng.normal(size=(5, 3))
        naive = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        assert np.allclose(dm.pairwise_sq_dists(a, b), naive)

    def test_non_negative_under_cancellation(self):
        # Large coordinates provoke floating-point cancellation; the clip
        # must keep every entry non-negative.
        a = np.full((4, 3), 1e8)
        assert (dm.pairwise_sq_dists(a, a) >= 0).all()

    def test_shapes(self):
        a = np.zeros((3, 2))
        b = np.zeros((4, 2))
        assert dm.pairwise_sq_dists(a, b).shape == (3, 4)


class TestChunkedIteration:
    def test_covers_all_rows(self, monkeypatch):
        monkeypatch.setattr(dm, "_CHUNK_BUDGET", 10)  # force many chunks
        rng = np.random.default_rng(1)
        a = rng.normal(size=(23, 2))
        b = rng.normal(size=(4, 2))
        seen = np.zeros(len(a), dtype=bool)
        full = dm.pairwise_sq_dists(a, b)
        for rows, block in dm.iter_chunked_sq_dists(a, b):
            assert np.allclose(block, full[rows])
            seen[rows] = True
        assert seen.all()

    def test_single_chunk_when_small(self):
        a = np.zeros((3, 2))
        b = np.zeros((2, 2))
        chunks = list(dm.iter_chunked_sq_dists(a, b))
        assert len(chunks) == 1


class TestAggregates:
    def test_count_within(self):
        a = np.array([[0.0, 0.0], [10.0, 0.0]])
        b = np.array([[0.5, 0.0], [1.5, 0.0], [10.2, 0.0]])
        assert dm.count_within(a, b, radius=1.0).tolist() == [1, 1]

    def test_count_within_inclusive_boundary(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[1.0, 0.0]])
        assert dm.count_within(a, b, radius=1.0).tolist() == [1]

    def test_any_within_true(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[5.0, 0.0], [0.9, 0.0]])
        assert dm.any_within(a, b, radius=1.0)

    def test_any_within_false(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[5.0, 0.0], [0.0, 2.0]])
        assert not dm.any_within(a, b, radius=1.0)

    def test_min_sq_dist_between(self):
        a = np.array([[0.0, 0.0], [10.0, 10.0]])
        b = np.array([[3.0, 4.0], [20.0, 20.0]])
        assert dm.min_sq_dist_between(a, b) == pytest.approx(25.0)


@settings(max_examples=60, deadline=None)
@given(
    a=arrays(np.float64, (5, 3), elements=st.floats(-100, 100)),
    b=arrays(np.float64, (4, 3), elements=st.floats(-100, 100)),
)
def test_pairwise_property_matches_naive(a, b):
    naive = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
    fast = dm.pairwise_sq_dists(a, b)
    assert np.allclose(fast, naive, atol=1e-6 * (1 + np.abs(naive).max()))


@settings(max_examples=60, deadline=None)
@given(
    a=arrays(np.float64, (6, 2), elements=st.floats(-50, 50)),
    b=arrays(np.float64, (6, 2), elements=st.floats(-50, 50)),
    radius=st.floats(0.1, 100),
)
def test_count_and_any_consistent(a, b, radius):
    counts = dm.count_within(a, b, radius)
    assert dm.any_within(a, b, radius) == bool((counts > 0).any())
