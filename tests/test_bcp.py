"""Unit and property tests for the Bichromatic Closest Pair solvers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import DataError, ParameterError
from repro.geometry.bcp import bcp, bcp_within


def naive_bcp(a, b):
    best, pair = np.inf, None
    for i, p in enumerate(a):
        for j, q in enumerate(b):
            d = float(((p - q) ** 2).sum())
            if d < best:
                best, pair = d, (i, j)
    return np.sqrt(best), pair


class TestBCPBasics:
    def test_trivial_pair(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[3.0, 4.0]])
        res = bcp(a, b)
        assert res.distance == pytest.approx(5.0)
        assert res.pair == (0, 0)

    def test_picks_minimum(self):
        a = np.array([[0.0, 0.0], [10.0, 0.0]])
        b = np.array([[9.0, 0.0], [50.0, 50.0]])
        res = bcp(a, b)
        assert res.pair == (1, 0)
        assert res.distance == pytest.approx(1.0)

    def test_identical_points_give_zero(self):
        a = np.array([[2.0, 2.0, 2.0]])
        b = np.array([[5.0, 5.0, 5.0], [2.0, 2.0, 2.0]])
        res = bcp(a, b)
        assert res.distance == 0.0
        assert res.index_b == 1

    def test_empty_input_rejected(self):
        with pytest.raises(DataError):
            bcp(np.empty((0, 2)), np.array([[0.0, 0.0]]))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(DataError):
            bcp(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ParameterError):
            bcp(np.zeros((1, 2)), np.zeros((1, 2)), strategy="voronoi")

    def test_divide2d_requires_2d(self):
        with pytest.raises(ParameterError):
            bcp(np.zeros((2, 3)), np.zeros((2, 3)), strategy="divide2d")


@pytest.mark.parametrize("strategy", ["brute", "kdtree", "divide2d"])
class TestStrategiesAgree2D:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_instances(self, strategy, seed):
        rng = np.random.default_rng(seed)
        a = rng.uniform(0, 100, size=(rng.integers(1, 40), 2))
        b = rng.uniform(0, 100, size=(rng.integers(1, 40), 2))
        expected, _pair = naive_bcp(a, b)
        res = bcp(a, b, strategy=strategy)
        assert res.distance == pytest.approx(expected)
        # The returned indices must realise the returned distance.
        realised = np.linalg.norm(a[res.index_a] - b[res.index_b])
        assert realised == pytest.approx(res.distance)

    def test_clustered_instances(self, strategy):
        rng = np.random.default_rng(99)
        a = rng.normal(0, 0.5, size=(30, 2))
        b = rng.normal(3, 0.5, size=(25, 2))
        expected, _ = naive_bcp(a, b)
        assert bcp(a, b, strategy=strategy).distance == pytest.approx(expected)

    def test_collinear_points(self, strategy):
        a = np.array([[float(i), 0.0] for i in range(10)])
        b = np.array([[float(i) + 0.4, 0.0] for i in range(10, 20)])
        expected, _ = naive_bcp(a, b)
        assert bcp(a, b, strategy=strategy).distance == pytest.approx(expected)

    def test_duplicate_coordinates(self, strategy):
        a = np.array([[1.0, 1.0]] * 5)
        b = np.array([[1.0, 2.0]] * 7)
        assert bcp(a, b, strategy=strategy).distance == pytest.approx(1.0)


@pytest.mark.parametrize("strategy", ["brute", "kdtree"])
@pytest.mark.parametrize("d", [1, 3, 5, 7])
def test_strategies_agree_high_dim(strategy, d):
    rng = np.random.default_rng(d)
    a = rng.uniform(0, 10, size=(25, d))
    b = rng.uniform(0, 10, size=(30, d))
    expected, _ = naive_bcp(a, b)
    assert bcp(a, b, strategy=strategy).distance == pytest.approx(expected)


class TestBCPWithin:
    def test_true_when_within(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[0.5, 0.0]])
        assert bcp_within(a, b, eps=1.0)

    def test_false_when_apart(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[5.0, 0.0]])
        assert not bcp_within(a, b, eps=1.0)

    def test_boundary_inclusive(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[1.0, 0.0]])
        assert bcp_within(a, b, eps=1.0)

    @pytest.mark.parametrize("strategy", ["brute", "kdtree", "divide2d"])
    def test_matches_full_bcp(self, strategy):
        rng = np.random.default_rng(7)
        a = rng.uniform(0, 20, size=(20, 2))
        b = rng.uniform(0, 20, size=(20, 2))
        dist, _ = naive_bcp(a, b)
        # Stay off the exact boundary: the decision procedure may compute
        # squared distances through the expanded form, whose last-ulp
        # rounding differs from the difference form used here.
        assert not bcp_within(a, b, dist * 0.999, strategy=strategy)
        assert bcp_within(a, b, dist * 1.001, strategy=strategy)


@settings(max_examples=80, deadline=None)
@given(
    a=arrays(np.float64, st.tuples(st.integers(1, 12), st.just(2)),
             elements=st.floats(-50, 50)),
    b=arrays(np.float64, st.tuples(st.integers(1, 12), st.just(2)),
             elements=st.floats(-50, 50)),
)
def test_property_all_strategies_match_naive(a, b):
    expected, _ = naive_bcp(a, b)
    # The brute strategy computes squared distances through the expanded
    # form |a|^2 + |b|^2 - 2ab, whose cancellation error grows with the
    # coordinate scale; allow the corresponding absolute slack.
    scale = 1.0 + max(np.abs(a).max(), np.abs(b).max())
    for strategy in ("brute", "kdtree", "divide2d"):
        got = bcp(a, b, strategy=strategy).distance
        assert got == pytest.approx(expected, abs=1e-7 * scale)


@settings(max_examples=40, deadline=None)
@given(
    a=arrays(np.float64, st.tuples(st.integers(1, 10), st.just(4)),
             elements=st.floats(-20, 20)),
    b=arrays(np.float64, st.tuples(st.integers(1, 10), st.just(4)),
             elements=st.floats(-20, 20)),
)
def test_property_kdtree_matches_naive_4d(a, b):
    expected, _ = naive_bcp(a, b)
    assert bcp(a, b, strategy="kdtree").distance == pytest.approx(expected, abs=1e-9)
