"""Unit and property tests for the Bichromatic Closest Pair solvers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import DataError, ParameterError
from repro.geometry import distance as dm
from repro.geometry.bcp import bcp, bcp_within
from repro.grid import counters
from repro.index.kdtree import KDTree


def naive_bcp(a, b):
    best, pair = np.inf, None
    for i, p in enumerate(a):
        for j, q in enumerate(b):
            d = float(((p - q) ** 2).sum())
            if d < best:
                best, pair = d, (i, j)
    return np.sqrt(best), pair


class TestBCPBasics:
    def test_trivial_pair(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[3.0, 4.0]])
        res = bcp(a, b)
        assert res.distance == pytest.approx(5.0)
        assert res.pair == (0, 0)

    def test_picks_minimum(self):
        a = np.array([[0.0, 0.0], [10.0, 0.0]])
        b = np.array([[9.0, 0.0], [50.0, 50.0]])
        res = bcp(a, b)
        assert res.pair == (1, 0)
        assert res.distance == pytest.approx(1.0)

    def test_identical_points_give_zero(self):
        a = np.array([[2.0, 2.0, 2.0]])
        b = np.array([[5.0, 5.0, 5.0], [2.0, 2.0, 2.0]])
        res = bcp(a, b)
        assert res.distance == 0.0
        assert res.index_b == 1

    def test_empty_input_rejected(self):
        with pytest.raises(DataError):
            bcp(np.empty((0, 2)), np.array([[0.0, 0.0]]))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(DataError):
            bcp(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ParameterError):
            bcp(np.zeros((1, 2)), np.zeros((1, 2)), strategy="voronoi")

    def test_divide2d_requires_2d(self):
        with pytest.raises(ParameterError):
            bcp(np.zeros((2, 3)), np.zeros((2, 3)), strategy="divide2d")


@pytest.mark.parametrize("strategy", ["brute", "kdtree", "divide2d"])
class TestStrategiesAgree2D:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_instances(self, strategy, seed):
        rng = np.random.default_rng(seed)
        a = rng.uniform(0, 100, size=(rng.integers(1, 40), 2))
        b = rng.uniform(0, 100, size=(rng.integers(1, 40), 2))
        expected, _pair = naive_bcp(a, b)
        res = bcp(a, b, strategy=strategy)
        assert res.distance == pytest.approx(expected)
        # The returned indices must realise the returned distance.
        realised = np.linalg.norm(a[res.index_a] - b[res.index_b])
        assert realised == pytest.approx(res.distance)

    def test_clustered_instances(self, strategy):
        rng = np.random.default_rng(99)
        a = rng.normal(0, 0.5, size=(30, 2))
        b = rng.normal(3, 0.5, size=(25, 2))
        expected, _ = naive_bcp(a, b)
        assert bcp(a, b, strategy=strategy).distance == pytest.approx(expected)

    def test_collinear_points(self, strategy):
        a = np.array([[float(i), 0.0] for i in range(10)])
        b = np.array([[float(i) + 0.4, 0.0] for i in range(10, 20)])
        expected, _ = naive_bcp(a, b)
        assert bcp(a, b, strategy=strategy).distance == pytest.approx(expected)

    def test_duplicate_coordinates(self, strategy):
        a = np.array([[1.0, 1.0]] * 5)
        b = np.array([[1.0, 2.0]] * 7)
        assert bcp(a, b, strategy=strategy).distance == pytest.approx(1.0)


@pytest.mark.parametrize("strategy", ["brute", "kdtree"])
@pytest.mark.parametrize("d", [1, 3, 5, 7])
def test_strategies_agree_high_dim(strategy, d):
    rng = np.random.default_rng(d)
    a = rng.uniform(0, 10, size=(25, d))
    b = rng.uniform(0, 10, size=(30, d))
    expected, _ = naive_bcp(a, b)
    assert bcp(a, b, strategy=strategy).distance == pytest.approx(expected)


class TestBCPWithin:
    def test_true_when_within(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[0.5, 0.0]])
        assert bcp_within(a, b, eps=1.0)

    def test_false_when_apart(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[5.0, 0.0]])
        assert not bcp_within(a, b, eps=1.0)

    def test_boundary_inclusive(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[1.0, 0.0]])
        assert bcp_within(a, b, eps=1.0)

    @pytest.mark.parametrize("strategy", ["brute", "kdtree", "divide2d"])
    def test_matches_full_bcp(self, strategy):
        rng = np.random.default_rng(7)
        a = rng.uniform(0, 20, size=(20, 2))
        b = rng.uniform(0, 20, size=(20, 2))
        dist, _ = naive_bcp(a, b)
        # Stay off the exact boundary: the decision procedure may compute
        # squared distances through the expanded form, whose last-ulp
        # rounding differs from the difference form used here.
        assert not bcp_within(a, b, dist * 0.999, strategy=strategy)
        assert bcp_within(a, b, dist * 1.001, strategy=strategy)


@settings(max_examples=80, deadline=None)
@given(
    a=arrays(np.float64, st.tuples(st.integers(1, 12), st.just(2)),
             elements=st.floats(-50, 50)),
    b=arrays(np.float64, st.tuples(st.integers(1, 12), st.just(2)),
             elements=st.floats(-50, 50)),
)
def test_property_all_strategies_match_naive(a, b):
    expected, _ = naive_bcp(a, b)
    # The brute strategy computes squared distances through the expanded
    # form |a|^2 + |b|^2 - 2ab, whose cancellation error grows with the
    # coordinate scale; allow the corresponding absolute slack.
    scale = 1.0 + max(np.abs(a).max(), np.abs(b).max())
    for strategy in ("brute", "kdtree", "divide2d"):
        got = bcp(a, b, strategy=strategy).distance
        assert got == pytest.approx(expected, abs=1e-7 * scale)


@settings(max_examples=40, deadline=None)
@given(
    a=arrays(np.float64, st.tuples(st.integers(1, 10), st.just(4)),
             elements=st.floats(-20, 20)),
    b=arrays(np.float64, st.tuples(st.integers(1, 10), st.just(4)),
             elements=st.floats(-20, 20)),
)
def test_property_kdtree_matches_naive_4d(a, b):
    expected, _ = naive_bcp(a, b)
    assert bcp(a, b, strategy="kdtree").distance == pytest.approx(expected, abs=1e-9)


class TestEarlyExit:
    """Regressions for the decision version's early termination."""

    def _counting_tree(self, points, monkeypatch):
        """A KDTree whose leaf distance evaluations are counted."""
        calls = {"n": 0}
        real = dm.sq_dists_to_point

        def counting(pts, q):
            calls["n"] += 1
            return real(pts, q)

        import repro.index.kdtree as kdtree_mod

        monkeypatch.setattr(kdtree_mod.dm, "sq_dists_to_point", counting)
        return KDTree(points), calls

    def test_nearest_bound_sq_is_true_early_exit(self, monkeypatch):
        # Points on a circle around the query: the unbounded search must
        # refine through many leaves (the splits pass near the centre, so
        # box lower bounds stay small), while a tight bound prunes every
        # node whose box cannot beat it — down to the handful of leaves on
        # the query's own split path.
        angles = np.linspace(0.0, 2 * np.pi, 512, endpoint=False)
        points = 100.0 * np.column_stack([np.cos(angles), np.sin(angles)])
        q = np.zeros(2)

        tree, calls = self._counting_tree(points, monkeypatch)
        idx, sq = tree.nearest(q)
        assert idx >= 0 and sq == pytest.approx(100.0 ** 2)
        unbounded = calls["n"]

        calls["n"] = 0
        idx, sq = tree.nearest(q, bound_sq=1e-9)
        assert idx == -1 and sq == 1e-9  # nothing beats the bound
        bounded = calls["n"]
        assert bounded < unbounded, (
            "bound_sq must prune the search, not just filter the result"
        )

    def test_nearest_with_bound_returns_hit_within_eps(self):
        rng = np.random.default_rng(4)
        points = rng.uniform(0.0, 100.0, size=(200, 3))
        tree = KDTree(points)
        q = points[17] + 0.05
        idx, sq = tree.nearest(q, bound_sq=dm.sq_radius(1.0))
        assert idx >= 0
        assert sq <= dm.sq_radius(1.0)

    def test_bcp_within_kdtree_stops_on_first_hit(self):
        # The first small-set point has a partner within eps; the kdtree
        # decision path must answer after that one query, not after
        # computing the full BCP over all points.
        a = np.vstack([
            np.array([[0.0, 0.0]]),
            np.random.default_rng(1).uniform(50.0, 60.0, size=(30, 2)),
        ])
        b = np.vstack([
            np.array([[0.5, 0.0]]),
            np.random.default_rng(2).uniform(80.0, 90.0, size=(40, 2)),
        ])
        before = counters.snapshot()
        assert bcp_within(a, b, eps=1.0, strategy="kdtree")
        delta = counters.delta_since(before)
        assert delta.get("bcp_early_exit") == 1
        assert delta.get("bcp_decision_queries") == 1

    def test_bcp_within_kdtree_negative_answers_all_queries(self):
        rng = np.random.default_rng(3)
        a = rng.uniform(0.0, 10.0, size=(12, 2))
        b = rng.uniform(100.0, 110.0, size=(20, 2))
        before = counters.snapshot()
        assert not bcp_within(a, b, eps=1.0, strategy="kdtree")
        delta = counters.delta_since(before)
        assert "bcp_early_exit" not in delta
        assert delta.get("bcp_decision_queries") == len(a)

    def test_bcp_within_auto_large_uses_short_circuit(self):
        # Above the brute threshold, auto resolves to the kd-tree decision
        # path (visible through its counters) and still answers correctly.
        rng = np.random.default_rng(5)
        a = rng.uniform(0.0, 100.0, size=(600, 2))
        b = np.vstack([
            rng.uniform(0.0, 100.0, size=(600, 2)),
            a[:1] + 0.01,
        ])
        assert len(a) * len(b) > 250_000
        before = counters.snapshot()
        assert bcp_within(a, b, eps=0.5)
        delta = counters.delta_since(before)
        assert delta.get("bcp_early_exit", 0) >= 1

    def test_bcp_within_rejects_unknown_strategy(self):
        with pytest.raises(ParameterError):
            bcp_within(np.zeros((1, 2)), np.zeros((1, 2)), 1.0, strategy="nope")

    def test_bcp_within_kdtree_rejects_empty(self):
        with pytest.raises(DataError):
            bcp_within(np.empty((0, 2)), np.zeros((1, 2)), 1.0, strategy="kdtree")
