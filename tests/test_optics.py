"""Tests for the OPTICS extension (ordering, extraction, profile)."""

import numpy as np
import pytest

from repro.algorithms.brute import brute_dbscan
from repro.errors import ParameterError
from repro.extensions.optics import (
    UNDEFINED,
    extract_dbscan,
    optics,
    reachability_profile,
)

from .conftest import make_blobs


def core_partition(result):
    cores = set(np.nonzero(result.core_mask)[0].tolist())
    return {frozenset(c & cores) for c in result.clusters} - {frozenset()}


class TestOrdering:
    def test_every_point_appears_once(self):
        pts = make_blobs(150, 2, 3, spread=1.0, domain=30.0, seed=0)
        res = optics(pts, eps=3.0, min_pts=5)
        assert sorted(res.order.tolist()) == list(range(len(pts)))

    def test_core_distance_matches_definition(self):
        pts = make_blobs(120, 2, 2, spread=1.0, domain=25.0, seed=1)
        eps, min_pts = 3.0, 6
        res = optics(pts, eps, min_pts)
        for i in range(0, len(pts), 13):
            dist = np.sort(np.linalg.norm(pts - pts[i], axis=1))
            within = dist[dist <= eps]
            expected = dist[min_pts - 1] if len(within) >= min_pts else UNDEFINED
            assert res.core_distance[i] == pytest.approx(expected)

    def test_first_point_has_undefined_reachability(self):
        pts = make_blobs(80, 2, 2, spread=1.0, domain=20.0, seed=2)
        res = optics(pts, 2.5, 4)
        assert res.reachability[res.order[0]] == UNDEFINED

    def test_reachability_at_least_core_distance_of_predecessors(self):
        # Reachability is max(dist, core distance), so it can never drop
        # below the smallest core distance in the dataset.
        pts = make_blobs(100, 2, 2, spread=1.0, domain=20.0, seed=3)
        res = optics(pts, 3.0, 5)
        finite = np.isfinite(res.reachability)
        if finite.any():
            min_core = res.core_distance[np.isfinite(res.core_distance)].min()
            assert res.reachability[finite].min() >= min_core - 1e-12

    def test_deterministic(self):
        pts = make_blobs(90, 2, 2, spread=1.0, domain=20.0, seed=4)
        a = optics(pts, 2.0, 4)
        b = optics(pts, 2.0, 4)
        assert np.array_equal(a.order, b.order)
        assert np.allclose(a.reachability, b.reachability, equal_nan=True)


class TestExtractDBSCAN:
    @pytest.mark.parametrize("factor", [1.0, 0.8, 0.5])
    def test_core_partition_matches_dbscan(self, factor):
        pts = make_blobs(200, 2, 3, spread=1.2, domain=35.0, seed=5)
        eps, min_pts = 3.0, 5
        res = optics(pts, eps, min_pts)
        extracted = extract_dbscan(res, eps * factor)
        reference = brute_dbscan(pts, eps * factor, min_pts)
        assert (extracted.core_mask == reference.core_mask).all()
        assert core_partition(extracted) == core_partition(reference)

    def test_extraction_above_generating_radius_rejected(self):
        pts = make_blobs(50, 2, 2, spread=1.0, domain=15.0, seed=6)
        res = optics(pts, 2.0, 4)
        with pytest.raises(ParameterError):
            extract_dbscan(res, 3.0)

    def test_noise_matches_dbscan(self):
        pts = make_blobs(150, 3, 2, spread=1.0, domain=30.0, seed=7)
        res = optics(pts, 2.5, 5)
        extracted = extract_dbscan(res, 2.5)
        reference = brute_dbscan(pts, 2.5, 5)
        assert (extracted.noise_mask == reference.noise_mask).all()

    def test_one_run_many_extractions(self):
        pts = make_blobs(130, 2, 3, spread=1.0, domain=25.0, seed=8)
        res = optics(pts, 4.0, 5)
        counts = [extract_dbscan(res, e).n_clusters for e in (1.0, 2.0, 4.0)]
        refs = [brute_dbscan(pts, e, 5).n_clusters for e in (1.0, 2.0, 4.0)]
        assert counts == refs


class TestReachabilityProfile:
    def test_renders_text(self):
        pts = make_blobs(100, 2, 2, spread=0.8, domain=20.0, seed=9)
        res = optics(pts, 3.0, 5)
        profile = reachability_profile(res, width=40, height=6)
        lines = profile.splitlines()
        assert len(lines) == 7
        assert set(profile) <= set("# -\n")

    def test_two_blobs_show_a_separator_peak(self):
        rng = np.random.default_rng(10)
        pts = np.vstack([
            rng.normal(0, 0.4, size=(60, 2)),
            rng.normal(12, 0.4, size=(60, 2)),
        ])
        res = optics(pts, 20.0, 5)
        profile = reachability_profile(res, width=30, height=8)
        top_row = profile.splitlines()[0]
        assert "#" in top_row  # the inter-blob jump reaches the top band
