"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import dbscan
from repro.algorithms.approx import approx_dbscan


def make_blobs(n, d, k, spread, domain, seed):
    """Deterministic Gaussian blobs with uniform background noise."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.15 * domain, 0.85 * domain, size=(k, d))
    which = rng.integers(0, k, size=n)
    pts = centers[which] + rng.normal(0, spread, size=(n, d))
    n_noise = max(1, n // 20)
    noise = rng.uniform(0, domain, size=(n_noise, d))
    return np.vstack([pts, noise])


def brute_neighbor_counts(points, eps):
    """O(n^2) oracle for |B(p, eps)| at every point."""
    diff = points[:, None, :] - points[None, :, :]
    sq = (diff ** 2).sum(axis=2)
    return (sq <= eps * eps).sum(axis=1)


#: Exact algorithms that must all return the unique DBSCAN result.
EXACT_ALGOS = ("brute", "grid", "kdd96", "cit08")


def run_algo(name, points, eps, min_pts, rho=0.01):
    if name == "approx":
        return approx_dbscan(points, eps, min_pts, rho=rho)
    return dbscan(points, eps, min_pts, algorithm=name)


@pytest.fixture(scope="session")
def small_blobs_2d():
    return make_blobs(200, 2, 3, spread=1.0, domain=60.0, seed=11)


@pytest.fixture(scope="session")
def small_blobs_3d():
    return make_blobs(250, 3, 3, spread=1.2, domain=60.0, seed=12)


@pytest.fixture(scope="session")
def small_blobs_5d():
    return make_blobs(220, 5, 3, spread=1.5, domain=60.0, seed=13)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(20150531)  # SIGMOD'15 started May 31, 2015
