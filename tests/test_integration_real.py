"""Integration: the full algorithm battery on paper-shaped workloads.

Cross-algorithm equivalence and the sandwich guarantee, exercised on the
seed-spreader data and all three real-dataset stand-ins (not just the
synthetic blobs the unit tests use).
"""

import numpy as np
import pytest

from repro import approx_dbscan, dbscan
from repro.data import farm_like, household_like, pamap2_like, seed_spreader
from repro.evaluation import adjusted_rand_index, sandwich_holds

DATASETS = {
    "ss3d": lambda n: seed_spreader(n, 3, seed=101).points,
    "ss5d": lambda n: seed_spreader(n, 5, seed=102).points,
    "pamap2": lambda n: pamap2_like(n, seed=103),
    "farm": lambda n: farm_like(n, seed=104),
    "household": lambda n: household_like(n, seed=105),
}

EPS = 8000.0
MIN_PTS = 8
N = 600


@pytest.fixture(scope="module")
def points_by_name():
    return {name: gen(N) for name, gen in DATASETS.items()}


@pytest.mark.parametrize("name", list(DATASETS))
def test_all_exact_algorithms_agree(name, points_by_name):
    pts = points_by_name[name]
    reference = dbscan(pts, EPS, MIN_PTS, algorithm="brute")
    for algo in ("grid", "kdd96", "cit08"):
        got = dbscan(pts, EPS, MIN_PTS, algorithm=algo)
        assert got.same_clusters(reference), (name, algo)
        assert (got.core_mask == reference.core_mask).all()


@pytest.mark.parametrize("name", list(DATASETS))
@pytest.mark.parametrize("rho", [0.001, 0.1])
def test_sandwich_on_paper_workloads(name, rho, points_by_name):
    pts = points_by_name[name]
    approx = approx_dbscan(pts, EPS, MIN_PTS, rho=rho)
    exact = dbscan(pts, EPS, MIN_PTS, algorithm="brute")
    inflated = dbscan(pts, EPS * (1 + rho), MIN_PTS, algorithm="brute")
    assert sandwich_holds(exact, approx, inflated), name


@pytest.mark.parametrize("name", list(DATASETS))
def test_default_rho_high_agreement(name, points_by_name):
    pts = points_by_name[name]
    approx = approx_dbscan(pts, EPS, MIN_PTS, rho=0.001)
    exact = dbscan(pts, EPS, MIN_PTS)
    # Not necessarily equal (eps may sit near a boundary on a given
    # dataset), but agreement must be near-perfect.
    assert adjusted_rand_index(approx, exact) > 0.99


def test_scaled_minpts_consistency():
    # Raising MinPts can only shrink the core set.
    pts = seed_spreader(800, 3, seed=106).points
    small = dbscan(pts, EPS, 5)
    large = dbscan(pts, EPS, 25)
    assert (large.core_mask <= small.core_mask).all()
    assert large.noise_mask.sum() >= small.noise_mask.sum()


def test_eps_monotonicity_of_cores():
    # Growing eps can only grow the core set.
    pts = pamap2_like(700, seed=107)
    small = dbscan(pts, 4000.0, MIN_PTS)
    large = dbscan(pts, 9000.0, MIN_PTS)
    assert (small.core_mask <= large.core_mask).all()
