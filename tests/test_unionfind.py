"""Unit and property tests for the union-find structures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.unionfind import KeyedUnionFind, UnionFind


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(5)
        assert uf.n_components == 5
        assert not uf.connected(0, 1)

    def test_union_connects(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.connected(0, 1)
        assert uf.n_components == 3

    def test_union_idempotent(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.n_components == 2

    def test_transitivity(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(3, 4)
        assert uf.connected(0, 2)
        assert not uf.connected(2, 3)

    def test_self_union(self):
        uf = UnionFind(2)
        assert not uf.union(0, 0)
        assert uf.n_components == 2

    def test_components_ordering(self):
        uf = UnionFind(6)
        uf.union(5, 3)
        uf.union(1, 4)
        comps = uf.components()
        # Ordered by smallest member; members sorted ascending.
        assert comps == [[0], [1, 4], [2], [3, 5]]

    def test_len(self):
        assert len(UnionFind(7)) == 7

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_zero_size(self):
        uf = UnionFind(0)
        assert uf.n_components == 0
        assert uf.components() == []

    def test_find_path_compression_consistent(self):
        uf = UnionFind(100)
        for i in range(99):
            uf.union(i, i + 1)
        root = uf.find(0)
        assert all(uf.find(i) == root for i in range(100))
        assert uf.n_components == 1


class TestKeyedUnionFind:
    def test_add_and_contains(self):
        uf = KeyedUnionFind()
        uf.add(("a", 1))
        assert ("a", 1) in uf
        assert ("b", 2) not in uf

    def test_union_registers_new_keys(self):
        uf = KeyedUnionFind()
        uf.union("x", "y")
        assert uf.connected("x", "y")
        assert len(uf) == 2

    def test_connected_unknown_keys(self):
        uf = KeyedUnionFind(["a"])
        assert not uf.connected("a", "zzz")

    def test_init_from_keys(self):
        uf = KeyedUnionFind([(0, 0), (0, 1), (1, 1)])
        assert len(uf) == 3
        assert uf.n_components == 3

    def test_add_idempotent(self):
        uf = KeyedUnionFind()
        first = uf.add("k")
        second = uf.add("k")
        assert first == second
        assert len(uf) == 1

    def test_component_labels_dense_and_deterministic(self):
        uf = KeyedUnionFind(["a", "b", "c", "d"])
        uf.union("a", "c")
        labels = uf.component_labels()
        assert set(labels.values()) == {0, 1, 2}
        assert labels["a"] == labels["c"]
        # First-appearance ordering: "a" (and "c") get 0, "b" gets 1, "d" 2.
        assert labels["a"] == 0 and labels["b"] == 1 and labels["d"] == 2


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(1, 40),
    unions=st.lists(st.tuples(st.integers(0, 39), st.integers(0, 39)), max_size=60),
)
def test_property_matches_graph_components(n, unions):
    """Union-find must agree with a graph BFS on the same edges."""
    uf = UnionFind(n)
    adj = {i: set() for i in range(n)}
    for a, b in unions:
        if a < n and b < n:
            uf.union(a, b)
            adj[a].add(b)
            adj[b].add(a)

    # BFS components.
    seen = [False] * n
    components = 0
    comp_id = [0] * n
    for start in range(n):
        if seen[start]:
            continue
        components += 1
        stack = [start]
        seen[start] = True
        while stack:
            u = stack.pop()
            comp_id[u] = components
            for v in adj[u]:
                if not seen[v]:
                    seen[v] = True
                    stack.append(v)

    assert uf.n_components == components
    for i in range(n):
        for j in range(i + 1, n):
            assert uf.connected(i, j) == (comp_id[i] == comp_id[j])
