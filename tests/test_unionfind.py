"""Unit and property tests for the union-find structures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.unionfind import DenseUnionFind, KeyedUnionFind, UnionFind


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(5)
        assert uf.n_components == 5
        assert not uf.connected(0, 1)

    def test_union_connects(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.connected(0, 1)
        assert uf.n_components == 3

    def test_union_idempotent(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.n_components == 2

    def test_transitivity(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(3, 4)
        assert uf.connected(0, 2)
        assert not uf.connected(2, 3)

    def test_self_union(self):
        uf = UnionFind(2)
        assert not uf.union(0, 0)
        assert uf.n_components == 2

    def test_components_ordering(self):
        uf = UnionFind(6)
        uf.union(5, 3)
        uf.union(1, 4)
        comps = uf.components()
        # Ordered by smallest member; members sorted ascending.
        assert comps == [[0], [1, 4], [2], [3, 5]]

    def test_len(self):
        assert len(UnionFind(7)) == 7

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_zero_size(self):
        uf = UnionFind(0)
        assert uf.n_components == 0
        assert uf.components() == []

    def test_find_path_compression_consistent(self):
        uf = UnionFind(100)
        for i in range(99):
            uf.union(i, i + 1)
        root = uf.find(0)
        assert all(uf.find(i) == root for i in range(100))
        assert uf.n_components == 1

    def test_add_appends_singletons(self):
        uf = UnionFind(2)
        assert uf.add() == 2
        assert uf.add() == 3
        assert len(uf) == 4
        assert uf.n_components == 4
        uf.union(1, 3)
        assert uf.connected(1, 3)
        assert not uf.connected(2, 3)


class TestKeyedUnionFind:
    def test_add_and_contains(self):
        uf = KeyedUnionFind()
        uf.add(("a", 1))
        assert ("a", 1) in uf
        assert ("b", 2) not in uf

    def test_union_registers_new_keys(self):
        uf = KeyedUnionFind()
        uf.union("x", "y")
        assert uf.connected("x", "y")
        assert len(uf) == 2

    def test_connected_unknown_keys(self):
        uf = KeyedUnionFind(["a"])
        assert not uf.connected("a", "zzz")

    def test_init_from_keys(self):
        uf = KeyedUnionFind([(0, 0), (0, 1), (1, 1)])
        assert len(uf) == 3
        assert uf.n_components == 3

    def test_add_idempotent(self):
        uf = KeyedUnionFind()
        first = uf.add("k")
        second = uf.add("k")
        assert first == second
        assert len(uf) == 1

    def test_component_labels_dense_and_deterministic(self):
        uf = KeyedUnionFind(["a", "b", "c", "d"])
        uf.union("a", "c")
        labels = uf.component_labels()
        assert set(labels.values()) == {0, 1, 2}
        assert labels["a"] == labels["c"]
        # First-appearance ordering: "a" (and "c") get 0, "b" gets 1, "d" 2.
        assert labels["a"] == 0 and labels["b"] == 1 and labels["d"] == 2


class TestDenseUnionFind:
    def test_basic_semantics_match_unionfind(self):
        uf = DenseUnionFind(5)
        assert uf.n_components == 5
        assert uf.union(0, 1)
        assert not uf.union(1, 0)
        uf.union(1, 2)
        assert uf.connected(0, 2)
        assert not uf.connected(0, 3)
        assert uf.n_components == 3

    def test_union_many_returns_spanning_mask(self):
        uf = DenseUnionFind(4)
        xs = np.array([0, 1, 0, 2], dtype=np.int64)
        ys = np.array([1, 2, 2, 3], dtype=np.int64)
        merged = uf.union_many(xs, ys)
        # Third pair (0,2) is redundant after the first two unions.
        assert merged.tolist() == [True, True, False, True]
        assert uf.n_components == 1

    def test_union_many_length_mismatch(self):
        with pytest.raises(ValueError):
            DenseUnionFind(3).union_many(np.array([0]), np.array([1, 2]))

    def test_roots_vectorised_matches_scalar_find(self):
        uf = DenseUnionFind(50)
        rng = np.random.default_rng(3)
        for a, b in rng.integers(0, 50, size=(40, 2)).tolist():
            uf.union(a, b)
        roots = uf.roots()
        assert roots.tolist() == [uf.find(i) for i in range(50)]
        # roots() writes the compressed forest back.
        assert all(roots[i] == roots[roots[i]] for i in range(50))

    def test_component_labels_match_keyed(self):
        rng = np.random.default_rng(11)
        dense = DenseUnionFind(30)
        keyed = KeyedUnionFind(range(30))
        for a, b in rng.integers(0, 30, size=(25, 2)).tolist():
            dense.union(a, b)
            keyed.union(a, b)
        keyed_labels = keyed.component_labels()
        assert dense.component_labels().tolist() == [
            keyed_labels[i] for i in range(30)
        ]
        assert dense.n_components == keyed.n_components

    def test_empty(self):
        uf = DenseUnionFind(0)
        assert uf.n_components == 0
        assert len(uf.roots()) == 0
        assert len(uf.component_labels()) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            DenseUnionFind(-2)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(1, 40),
    unions=st.lists(st.tuples(st.integers(0, 39), st.integers(0, 39)), max_size=60),
)
def test_property_dense_matches_keyed(n, unions):
    """DenseUnionFind must agree with KeyedUnionFind on any union sequence."""
    dense = DenseUnionFind(n)
    keyed = KeyedUnionFind(range(n))
    for a, b in unions:
        if a < n and b < n:
            assert dense.union(a, b) == keyed.union(a, b)
    assert dense.n_components == keyed.n_components
    keyed_labels = keyed.component_labels()
    assert dense.component_labels().tolist() == [keyed_labels[i] for i in range(n)]


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(1, 40),
    unions=st.lists(st.tuples(st.integers(0, 39), st.integers(0, 39)), max_size=60),
)
def test_property_matches_graph_components(n, unions):
    """Union-find must agree with a graph BFS on the same edges."""
    uf = UnionFind(n)
    adj = {i: set() for i in range(n)}
    for a, b in unions:
        if a < n and b < n:
            uf.union(a, b)
            adj[a].add(b)
            adj[b].add(a)

    # BFS components.
    seen = [False] * n
    components = 0
    comp_id = [0] * n
    for start in range(n):
        if seen[start]:
            continue
        components += 1
        stack = [start]
        seen[start] = True
        while stack:
            u = stack.pop()
            comp_id[u] = components
            for v in adj[u]:
                if not seen[v]:
                    seen[v] = True
                    stack.append(v)

    assert uf.n_components == components
    for i in range(n):
        for j in range(i + 1, n):
            assert uf.connected(i, j) == (comp_id[i] == comp_id[j])
