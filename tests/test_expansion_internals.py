"""Unit tests for the shared seed-expansion control flow."""

import numpy as np
import pytest

from repro.algorithms.expansion import expand_dbscan
from repro.core.params import DBSCANParams
from repro.errors import TimeoutExceeded


def brute_region_query_factory(points, eps):
    limit = eps * eps

    def region_query(i):
        sq = ((points - points[i]) ** 2).sum(axis=1)
        return np.nonzero(sq <= limit)[0]

    return region_query


def run(points, eps, min_pts, **kwargs):
    points = np.asarray(points, dtype=np.float64)
    return expand_dbscan(
        points,
        DBSCANParams(eps, min_pts),
        brute_region_query_factory(points, eps),
        algorithm_name="test",
        **kwargs,
    )


class TestExpansion:
    def test_single_blob(self):
        pts = np.random.default_rng(0).normal(0, 0.3, size=(40, 2))
        result = run(pts, 2.0, 5)
        assert result.n_clusters == 1
        assert result.core_mask.all()

    def test_cluster_ids_in_scan_order(self):
        # Clusters are numbered by the order their first core point is
        # scanned — the classic behaviour.
        pts = np.vstack([np.zeros((5, 2)), np.full((5, 2), 50.0)])
        result = run(pts, 1.0, 3)
        first = result.meta["first_labels"]
        assert first[0] == 0 and first[5] == 1

    def test_range_query_count_is_n(self):
        pts = np.random.default_rng(1).uniform(0, 20, size=(60, 2))
        result = run(pts, 2.0, 4)
        assert result.meta["range_queries"] == 60

    def test_border_memberships_complete(self):
        # Border between two clusters: both memberships collected even
        # though the classic first-labels give it to only one.
        ys = np.linspace(0, 2, 21)
        left = np.column_stack([np.zeros(21), ys])
        right = np.column_stack([np.full(21, 2.0), ys])
        middle = np.array([[1.0, 1.0]])
        pts = np.vstack([left, right, middle])
        result = run(pts, 1.05, 16)
        assert len(result.memberships_of(42)) == 2
        assert result.meta["first_labels"][42] in (0, 1)

    def test_noise_then_border_revision(self):
        # Point scanned first, found non-core (labelled noise), later
        # absorbed as border by an expanding cluster.
        border = np.array([[0.0, 0.0]])
        blob = np.column_stack([np.linspace(0.9, 1.35, 10), np.zeros(10)])
        pts = np.vstack([border, blob])
        result = run(pts, 1.0, 5)
        assert result.labels[0] >= 0
        assert not result.core_mask[0]

    def test_timeout_zero_budget(self):
        pts = np.zeros((50, 2))
        with pytest.raises(TimeoutExceeded):
            run(pts, 1.0, 2, time_budget=0.0)

    def test_extra_meta_merged(self):
        pts = np.zeros((5, 2))
        result = run(pts, 1.0, 2, extra_meta={"backend": "brute"})
        assert result.meta["backend"] == "brute"

    def test_min_pts_one_every_point_own_query(self):
        pts = np.arange(8, dtype=float).reshape(-1, 1) * 100
        result = run(pts, 1.0, 1)
        assert result.n_clusters == 8
        assert result.core_mask.all()
